"""PQL evaluator: path binding, existential predicates, aggregation.

Semantics follow Lorel where the paper does not override them:

* a FROM binding expands the environment by one variable per reachable
  node (nested-loop join over bindings, in order);
* path quantifiers compute bounded/unbounded closures over edge labels,
  ``^label`` traversing edges backwards;
* expressions evaluate to *value sets*; comparisons are existential
  ("some value on the left relates to some value on the right") --
  the natural reading for multi-valued, schema-less data;
* a bare path in WHERE is an existence test;
* aggregate calls (count/sum/avg/min/max) aggregate per result tuple,
  except when every select item is an aggregate, in which case they
  aggregate over the whole binding set (``select count(F) from ...``);
* subqueries (IN / EXISTS) see the enclosing tuple's variables
  (correlated subqueries).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.errors import PQLError, PQLNameError, PQLTypeError
from repro.pql import ast
from repro.pql import planner as _planner
from repro.pql.indexes import ANCESTRY_LABELS
from repro.pql.oem import OEMGraph, OEMNode

#: Largest frontier the materialized ancestry view serves; bigger
#: frontiers walk the CSR arrays in one joint BFS instead (per-root
#: closure caching only pays off for few roots).
_VIEW_FRONTIER_MAX = 8

#: Environment: variable name -> OEMNode.
Env = dict


def _pos(node) -> tuple:
    """(line, column) of an AST node, or (None, None) when unknown."""
    line = getattr(node, "line", 0)
    return (line, getattr(node, "column", 0)) if line else (None, None)

_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})

#: Scalar functions mapping each value of their argument's value set.
_SCALARS = {
    "len": lambda v: len(v) if isinstance(v, (str, bytes)) else None,
    "lower": lambda v: v.lower() if isinstance(v, str) else None,
    "upper": lambda v: v.upper() if isinstance(v, str) else None,
    "basename": lambda v: (v.rsplit("/", 1)[-1]
                           if isinstance(v, str) else None),
}


class Evaluator:
    """Executes parsed queries against one OEM graph.

    With a :class:`~repro.pql.indexes.IndexCatalog` attached
    (``catalog``), FROM bindings go through the cost-based planner
    (index vs scan per binding) and closure steps pick the materialized
    ancestry view or the CSR arrays over the live dicts; without one,
    evaluation is the pre-planner naive path (member scans plus the
    name-only pushdown) -- the ground truth the planned path is
    property-tested against.
    """

    def __init__(self, graph: OEMGraph, catalog=None):
        self.graph = graph
        self.catalog = catalog
        #: When set (by the engine, around a top-level execute), the
        #: planner appends one BindingPlan per top-level binding here.
        self.plan_log: Optional[list] = None
        self._depth = 0
        self._notes: Optional[dict] = None

    # -- entry point -------------------------------------------------------------------

    def execute(self, query: ast.Query,
                outer: Optional[Env] = None) -> list:
        """Run a query; returns a list of rows.

        Single-item selects return a flat list of values; multi-item
        selects return tuples.  Node values come back as
        :class:`OEMNode`.
        """
        self._depth += 1
        try:
            return self._execute(query, outer)
        finally:
            self._depth -= 1

    def _execute(self, query: ast.Query,
                 outer: Optional[Env] = None) -> list:
        envs = self._expand_bindings(query.bindings, outer or {},
                                     query.where)
        if query.where is not None:
            envs = [env for env in envs if self._truth(query.where, env)]

        if query.select and all(isinstance(item.expr, ast.Call)
                                and item.expr.name in _AGGREGATES
                                for item in query.select):
            row = tuple(self._aggregate_over(item.expr, envs)
                        for item in query.select)
            return [row[0]] if len(row) == 1 else [row]

        rows: list = []
        if query.limit == 0:
            return rows
        seen: set = set()
        keyed: list[tuple] = []
        for env in envs:
            sort_key = (self._order_key(query.order, env)
                        if query.order is not None else None)
            cells = [self._select_values(item.expr, env)
                     for item in query.select]
            for row in _cartesian(cells):
                value = row[0] if len(row) == 1 else tuple(row)
                key = _dedup_key(value)
                if query.distinct and key in seen:
                    continue
                seen.add(key)
                if query.order is not None:
                    keyed.append((sort_key, len(keyed), value))
                    continue
                rows.append(value)
                if query.limit is not None and len(rows) >= query.limit:
                    return rows
        if query.order is not None:
            # Python's sort is stable even with reverse=True, so ties
            # keep their discovery order.
            keyed.sort(key=lambda item: item[0],
                       reverse=query.order.descending)
            rows = [value for _, _, value in keyed]
            if query.limit is not None:
                rows = rows[:query.limit]
        return rows

    def _order_key(self, order: ast.OrderBy, env: Env) -> tuple:
        """A type-ranked, totally ordered sort key for one tuple."""
        values = self._values(order.expr, env)
        if not values:
            return (3, 0)                      # empty sorts last (asc)
        return _sort_token(values[0])

    # -- FROM ---------------------------------------------------------------------------

    def _expand_bindings(self, bindings: Iterable[ast.Binding],
                         outer: Env,
                         where: Optional[ast.Expr] = None) -> list[Env]:
        bindings = list(bindings)
        # A variable bound more than once is rebound (shadowed); pruning
        # its earlier binding by the WHERE literal would be unsound.
        counts: dict = {}
        for binding in bindings:
            counts[binding.name] = counts.get(binding.name, 0) + 1
        catalog = self.catalog
        if catalog is not None:
            filters = {name: preds for name, preds
                       in _planner.extract_filters(where).items()
                       if counts.get(name, 0) == 1}
        else:
            name_filters = {name: literal for name, literal
                            in _equality_name_filters(where).items()
                            if counts.get(name, 0) == 1}
        record = self.plan_log is not None and self._depth == 1
        envs = [dict(outer)]
        for binding in bindings:
            plan = None
            if catalog is not None:
                pushdown, plan = _planner.plan_binding(self, binding,
                                                       filters)
                if record:
                    self.plan_log.append(plan)
                    self._notes = plan.notes
            else:
                pushdown = self._pushdown_candidates(binding, name_filters)
            expanded: list[Env] = []
            for env in envs:
                nodes = (pushdown if pushdown is not None
                         else self._path_nodes(binding.path, env))
                if plan is not None:
                    plan.actual_rows += len(nodes)
                for node in nodes:
                    child = dict(env)
                    child[binding.name] = node
                    expanded.append(child)
            envs = expanded
            self._notes = None
        return envs

    def _pushdown_candidates(self, binding: ast.Binding,
                             name_filters: dict) -> Optional[list[OEMNode]]:
        """Selection pushdown: ``Provenance.member as V`` with a
        top-level ``V.name = "literal"`` conjunct uses the name index
        instead of scanning the whole member class.  The WHERE clause
        still runs afterwards, so this is purely a pruning step."""
        literal = name_filters.get(binding.name)
        if literal is None:
            return None
        path = binding.path
        if path.root != OEMGraph.ROOT or len(path.steps) != 1:
            return None
        member = _single_forward_label(path.steps[0])
        if member is None or path.steps[0].quantifier != ast.Quantifier():
            return None
        if member == "node":
            return self.graph.named(literal)
        return [node for node in self.graph.named(literal)
                if isinstance(node.type, str)
                and node.type.lower() == member]

    def _path_nodes(self, path: ast.Path, env: Env) -> list[OEMNode]:
        """Nodes reachable over a FROM path."""
        steps = list(path.steps)
        if path.root == OEMGraph.ROOT:
            if not steps:
                raise PQLError("'Provenance' needs a member, e.g. "
                               "Provenance.file", *_pos(path))
            first = steps.pop(0)
            member = _single_forward_label(first)
            if member is None or first.quantifier != ast.Quantifier():
                raise PQLError("the first step after 'Provenance' must be "
                               "a plain member name", *_pos(path))
            frontier = self.graph.members(member)
        elif path.root in env:
            value = env[path.root]
            if not isinstance(value, OEMNode):
                raise PQLTypeError(
                    f"variable {path.root!r} is not an object", *_pos(path)
                )
            frontier = [value]
        else:
            raise PQLNameError(f"unbound variable {path.root!r}",
                               *_pos(path))
        for step in steps:
            frontier = self._apply_step(frontier, step)
        return frontier

    def _apply_step(self, frontier: list[OEMNode],
                    step: ast.Step) -> list[OEMNode]:
        """Apply one edge step with its quantifier to a node frontier.

        Single hops always walk the live dicts (cheapest).  Multi-hop
        and unbounded closures consult the index catalogue when one is
        attached: ancestry-label closures from small frontiers come
        from the materialized view, other closures run over the CSR
        arrays when the snapshot is fresh, and everything falls back to
        the dict walk mid-burst.  All three produce the same node set.
        """
        if self.catalog is not None and frontier:
            fast = self._apply_step_fast(frontier, step)
            if fast is not None:
                return fast
        minimum = step.quantifier.minimum
        maximum = step.quantifier.maximum
        result: dict[int, OEMNode] = {}
        # BFS over repetition depth; visited prevents cycles from looping
        # (the provenance graph is a DAG, but ^edges make walks revisit).
        visited: dict[int, int] = {}
        layer = list(frontier)
        depth = 0
        while layer:
            if depth >= minimum:
                for node in layer:
                    result.setdefault(id(node), node)
            if maximum is not None and depth >= maximum:
                break
            next_layer: list[OEMNode] = []
            for node in layer:
                for target in self._follow(node, step.edge):
                    if visited.get(id(target), -1) < depth + 1:
                        if id(target) not in visited:
                            visited[id(target)] = depth + 1
                            next_layer.append(target)
            layer = next_layer
            depth += 1
        return list(result.values())

    def _apply_step_fast(self, frontier: list[OEMNode],
                         step: ast.Step) -> Optional[list[OEMNode]]:
        """Serve a closure step from the ancestry view or the CSR
        snapshot; None means "use the live dict walk"."""
        minimum = step.quantifier.minimum
        maximum = step.quantifier.maximum
        if maximum is not None and maximum <= 1:
            return None
        edges = _flat_edges(step.edge)
        if not edges:
            return None
        catalog = self.catalog
        notes = self._notes
        labels = {name for name, _ in edges}
        directions = {reverse for _, reverse in edges}
        if (maximum is None and minimum <= 1 and len(directions) == 1
                and len(frontier) <= _VIEW_FRONTIER_MAX
                and labels <= ANCESTRY_LABELS):
            # Materialized ancestry closure, cached per root.
            reverse = next(iter(directions))
            key = tuple(sorted(labels))
            if notes is not None:
                notes["ancestry_view"] = notes.get("ancestry_view", 0) + 1
            result: dict[int, OEMNode] = {}
            if minimum == 0:
                for node in frontier:
                    result.setdefault(id(node), node)
            for node in frontier:
                for reached in catalog.view.closure(node, key, reverse):
                    result.setdefault(id(reached), reached)
            return list(result.values())
        csr = catalog.csr()
        if csr is None:
            # Mid-burst: the snapshot is stale, walk the live dicts.
            if notes is not None:
                notes["dict_walk"] = notes.get("dict_walk", 0) + 1
            return None
        node_id = csr.node_id
        roots = []
        for node in frontier:
            nid = node_id.get(id(node))
            if nid is None:
                return None
            roots.append(nid)
        if notes is not None:
            notes["csr_bfs"] = notes.get("csr_bfs", 0) + 1
        found = csr.bfs(roots, edges, minimum, maximum)
        nodes = csr.nodes
        return [nodes[index] for index in found]

    def _follow(self, node: OEMNode, edge: ast.EdgeExpr) -> list[OEMNode]:
        if isinstance(edge, ast.EdgeAlt):
            out: list[OEMNode] = []
            for option in edge.options:
                out.extend(self._follow(node, option))
            return out
        if edge.reverse:
            return node.rin(edge.name)
        return node.out(edge.name)

    # -- expression evaluation ------------------------------------------------------------

    def _values(self, expr: ast.Expr, env: Env) -> list:
        """Evaluate an expression to its value set (list, ordered)."""
        if isinstance(expr, ast.Literal):
            return [expr.value]
        if isinstance(expr, ast.PathValue):
            return self._path_values(expr.path, env)
        if isinstance(expr, ast.Compare):
            return [self._compare(expr, env)]
        if isinstance(expr, (ast.BoolOp, ast.Not)):
            return [self._truth(expr, env)]
        if isinstance(expr, ast.Arith):
            return self._arith(expr, env)
        if isinstance(expr, ast.Neg):
            return [_numeric(-value) for value in
                    self._values(expr.operand, env)
                    if isinstance(value, (int, float))
                    and not isinstance(value, bool)]
        if isinstance(expr, ast.Call):
            if expr.name in _SCALARS:
                if len(expr.args) != 1:
                    raise PQLError(f"{expr.name}() takes one argument",
                                   *_pos(expr))
                fn = _SCALARS[expr.name]
                return [out for value in self._values(expr.args[0], env)
                        if (out := fn(value)) is not None]
            return [self._call(expr, env)]
        if isinstance(expr, ast.InQuery):
            return [self._in_query(expr, env)]
        if isinstance(expr, ast.ExistsQuery):
            return [bool(self.execute(expr.query, env))]
        raise PQLError(f"unhandled expression node: {expr!r}")

    def _path_values(self, path: ast.Path, env: Env) -> list:
        """A path in expression position: nodes *and* atoms it reaches.

        All but the last step must traverse edges; the last step also
        collects atom values of its label from the frontier.
        """
        if not path.steps:
            if path.root not in env:
                raise PQLNameError(f"unbound variable {path.root!r}",
                                   *_pos(path))
            return [env[path.root]]
        frontier_path = ast.Path(path.root, path.steps[:-1])
        frontier = self._path_nodes(frontier_path, env)
        last = path.steps[-1]
        values: list = []
        if last.quantifier == ast.Quantifier():
            label = _single_forward_label(last)
            if label is not None:
                for node in frontier:
                    values.extend(node.atom(label))
        values.extend(self._apply_step(frontier, last))
        return values

    def _truth(self, expr: ast.Expr, env: Env) -> bool:
        """Evaluate an expression as a predicate."""
        if isinstance(expr, ast.BoolOp):
            if expr.op == "and":
                return all(self._truth(op, env) for op in expr.operands)
            return any(self._truth(op, env) for op in expr.operands)
        if isinstance(expr, ast.Not):
            return not self._truth(expr.operand, env)
        if isinstance(expr, ast.Compare):
            return self._compare(expr, env)
        if isinstance(expr, ast.InQuery):
            return self._in_query(expr, env)
        if isinstance(expr, ast.ExistsQuery):
            return bool(self.execute(expr.query, env))
        if isinstance(expr, ast.PathValue):
            return bool(self._values(expr, env))     # existence test
        values = self._values(expr, env)
        return any(bool(value) for value in values)

    def _compare(self, expr: ast.Compare, env: Env) -> bool:
        left = self._values(expr.left, env)
        right = self._values(expr.right, env)
        for lhs in left:
            for rhs in right:
                if _compare_pair(expr.op, lhs, rhs):
                    return True
        return False

    def _arith(self, expr: ast.Arith, env: Env) -> list:
        out: list = []
        for lhs in self._values(expr.left, env):
            for rhs in self._values(expr.right, env):
                if not _is_number(lhs) or not _is_number(rhs):
                    continue
                out.append(_apply_arith(expr.op, lhs, rhs))
        return out

    # -- functions / aggregates ---------------------------------------------------------------

    def _call(self, expr: ast.Call, env: Env):
        if expr.name in _AGGREGATES:
            if len(expr.args) != 1:
                raise PQLError(f"{expr.name}() takes exactly one argument",
                               *_pos(expr))
            return _aggregate(expr.name, self._values(expr.args[0], env))
        raise PQLNameError(f"unknown function {expr.name!r}", *_pos(expr))

    def _aggregate_over(self, expr: ast.Call, envs: list[Env]):
        """Aggregate across the whole binding set (aggregate-only select)."""
        if len(expr.args) != 1:
            raise PQLError(f"{expr.name}() takes exactly one argument",
                           *_pos(expr))
        values: list = []
        seen: set = set()
        for env in envs:
            for value in self._values(expr.args[0], env):
                key = _dedup_key(value)
                if key in seen:
                    continue
                seen.add(key)
                values.append(value)
        return _aggregate(expr.name, values)

    def _in_query(self, expr: ast.InQuery, env: Env) -> bool:
        needles = self._values(expr.needle, env)
        haystack = self.execute(expr.query, env)
        hay_keys = {_dedup_key(value) for value in haystack}
        return any(_dedup_key(needle) in hay_keys for needle in needles)

    def _select_values(self, expr: ast.Expr, env: Env) -> list:
        values = self._values(expr, env)
        return values if values else []


# -- helpers ------------------------------------------------------------------------------


def _single_forward_label(step: ast.Step) -> Optional[str]:
    if isinstance(step.edge, ast.EdgeName) and not step.edge.reverse:
        return step.edge.name
    return None


def _flat_edges(edge: ast.EdgeExpr) -> Optional[list[tuple[str, bool]]]:
    """Flatten an edge expression to [(label, reverse), ...], or None
    if it holds anything other than names/alternations."""
    if isinstance(edge, ast.EdgeName):
        return [(edge.name, edge.reverse)]
    if isinstance(edge, ast.EdgeAlt):
        out: list[tuple[str, bool]] = []
        for option in edge.options:
            flat = _flat_edges(option)
            if flat is None:
                return None
            out.extend(flat)
        return out
    return None


def _equality_name_filters(where: Optional[ast.Expr]) -> dict:
    """Map of variable -> string literal for top-level conjuncts of the
    form ``Var.name = "literal"`` (either operand order)."""
    filters: dict = {}
    if where is None:
        return filters
    conjuncts = (list(where.operands)
                 if isinstance(where, ast.BoolOp) and where.op == "and"
                 else [where])
    for conjunct in conjuncts:
        if not isinstance(conjunct, ast.Compare) or conjunct.op != "=":
            continue
        for lhs, rhs in ((conjunct.left, conjunct.right),
                         (conjunct.right, conjunct.left)):
            if (isinstance(lhs, ast.PathValue)
                    and len(lhs.path.steps) == 1
                    and _single_forward_label(lhs.path.steps[0]) == "name"
                    and lhs.path.steps[0].quantifier == ast.Quantifier()
                    and isinstance(rhs, ast.Literal)
                    and isinstance(rhs.value, str)):
                filters[lhs.path.root] = rhs.value
    return filters


def _sort_token(value) -> tuple:
    """Totally ordered key over heterogeneous values: numbers, then
    strings, then bytes, then everything else by repr."""
    if _is_number(value):
        return (0, value)
    if isinstance(value, str):
        return (1, value)
    if isinstance(value, bytes):
        return (2, value)
    if isinstance(value, OEMNode):
        return (4, value.ref)
    return (5, repr(value))


def _dedup_key(value):
    if isinstance(value, OEMNode):
        return ("node", value.ref)
    if isinstance(value, tuple):
        return tuple(_dedup_key(item) for item in value)
    return (type(value).__name__, value)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _numeric(value):
    return value


def _apply_arith(op: str, lhs, rhs):
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if rhs == 0:
            raise PQLTypeError("division by zero")
        return lhs / rhs
    if op == "%":
        if rhs == 0:
            raise PQLTypeError("modulo by zero")
        return lhs % rhs
    raise PQLError(f"unknown arithmetic operator {op!r}")


def _like(text, pattern) -> bool:
    """SQL-LIKE matching: ``%`` any run, ``_`` one character."""
    if not isinstance(text, str) or not isinstance(pattern, str):
        return False
    import re
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern
    )
    return re.fullmatch(regex, text) is not None


def _compare_pair(op: str, lhs, rhs) -> bool:
    if op == "like":
        return _like(lhs, rhs)
    if isinstance(lhs, OEMNode) or isinstance(rhs, OEMNode):
        if op == "=":
            return (isinstance(lhs, OEMNode) and isinstance(rhs, OEMNode)
                    and lhs.ref == rhs.ref)
        if op == "!=":
            return not (isinstance(lhs, OEMNode) and isinstance(rhs, OEMNode)
                        and lhs.ref == rhs.ref)
        return False
    comparable = (
        (_is_number(lhs) and _is_number(rhs))
        or (isinstance(lhs, str) and isinstance(rhs, str))
        or (isinstance(lhs, bytes) and isinstance(rhs, bytes))
        or (isinstance(lhs, bool) and isinstance(rhs, bool))
    )
    if not comparable:
        return False
    if op == "=":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise PQLError(f"unknown comparison operator {op!r}")


def _aggregate(name: str, values: list):
    if name == "count":
        return len(values)
    numbers = [value for value in values if _is_number(value)]
    if name == "sum":
        return sum(numbers)
    if name == "avg":
        return sum(numbers) / len(numbers) if numbers else 0.0
    if name == "min":
        return min(numbers) if numbers else None
    if name == "max":
        return max(numbers) if numbers else None
    raise PQLError(f"unknown aggregate {name!r}")


def _cartesian(cells: list[list]) -> Iterable[tuple]:
    if any(not cell for cell in cells):
        # A tuple with an empty cell contributes nothing (Lorel drops it).
        return
    out = [()]
    for cell in cells:
        out = [row + (value,) for row in out for value in cell]
    yield from out
