"""Query engine: databases -> OEM graph -> parsed-and-evaluated PQL.

This is the component Waldo serves in the paper: it owns the graph built
from one or more volumes' provenance databases (cross-volume queries are
just a merged record stream) and runs PQL text against it.

Engine lifecycle
----------------

:meth:`QueryEngine.live` is the one construction path: it batch-builds
the graph from the sources' current records, then *subscribes* to each
source so every record the source ingests afterwards is spliced into the
graph via :meth:`OEMGraph.apply` -- the engine stays current without
ever being rebuilt.  ``System.query_engine()``, ``Waldo.query_engine()``
and the CLI all hand out the same live engine instead of constructing
their own; a sync is an O(new records) update, not an O(total history)
rebuild.

Sources are duck-typed: anything with ``all_records()`` works, and
anything that also has ``subscribe(listener)`` (the push feed
``ProvenanceDatabase`` exposes) keeps the engine live.  The graph
receives records; it never pulls them from storage (lint rule PL210).

:meth:`from_records` and :meth:`from_databases` remain as thin
compatibility wrappers -- ``from_records`` yields a static snapshot
engine over a plain stream, ``from_databases`` delegates to
:meth:`live`.

Plan cache
----------

Compiled queries are cached by *normalized* PQL text (whitespace runs
collapsed), so reformatting a query does not recompile it.  Each cached
plan also remembers the graph vocabulary epoch at which it last passed
the lint pre-pass: repeat executions skip the check entirely until the
graph's vocabulary grows (a new atom/edge label or Provenance member),
at which point the plan is re-checked once against the widened
vocabulary.
"""

from __future__ import annotations

import itertools
import time
from typing import Iterable

from repro.core.records import ProvenanceRecord
from repro.obs import NULL_OBS
from repro.pql.ast import Query
from repro.pql.evaluator import Evaluator
from repro.pql.indexes import IndexCatalog
from repro.pql.oem import OEMGraph, OEMNode
from repro.pql.parser import parse

#: "Plan has never passed the check" sentinel -- distinct from None
#: because foreign graphs without a vocab_epoch report epoch None.
_NEVER = object()


class CompiledPlan:
    """One cached compiled query: normalized text, parsed AST, the
    vocabulary epoch at which it last passed the lint pre-pass, and --
    after an optimized execution -- the planner's per-binding access
    choices (:class:`~repro.pql.planner.BindingPlan` list, the EXPLAIN
    payload).  Choices are re-made per execution against current graph
    statistics; the plan records the latest."""

    __slots__ = ("text", "query", "checked_epoch", "binding_plans")

    def __init__(self, text: str, query: Query):
        self.text = text
        self.query = query
        self.checked_epoch = _NEVER
        self.binding_plans = None

    def __repr__(self) -> str:
        return f"<CompiledPlan {self.text!r}>"


class QueryEngine:
    """Parse + evaluate PQL over a provenance graph.

    By default every query runs through the ``repro.lint`` static
    pre-pass first: blocking diagnostics (unknown attributes, unbound
    variables, bad calls, ...) surface as positioned ``PQLError``s in
    microseconds, before the nested-loop join starts.  Pass
    ``check=False`` (construction-time or per call) to opt out.
    """

    def __init__(self, graph: OEMGraph, check: bool = True, obs=NULL_OBS,
                 optimize: bool = True):
        self.graph = graph
        self.obs = obs
        self._plans: dict[str, CompiledPlan] = {}
        self._check = check
        self._vocabulary = None
        self._vocab_epoch = _NEVER
        self._last_plan_cache_hit = False
        self._subscriptions: list = []
        #: Default execution mode; per-call ``optimize=`` overrides.
        #: Optimized engines share one IndexCatalog per graph; the
        #: naive evaluator (no catalog) is the pre-planner baseline.
        self._optimize = optimize and isinstance(graph, OEMGraph)
        self._opt_evaluator = None
        self._naive_evaluator = None
        self._evaluator = self._evaluator_for(self._optimize)

    def _evaluator_for(self, optimize: bool) -> Evaluator:
        if optimize:
            if self._opt_evaluator is None:
                catalog = IndexCatalog.attach(self.graph)
                if (self.obs is not NULL_OBS
                        and id(self.obs) not in catalog.collector_obs):
                    catalog.collector_obs.add(id(self.obs))
                    self.obs.add_collector("pql", catalog.counters)
                self._opt_evaluator = Evaluator(self.graph, catalog)
            return self._opt_evaluator
        if self._naive_evaluator is None:
            self._naive_evaluator = Evaluator(self.graph)
        return self._naive_evaluator

    @property
    def catalog(self):
        """The graph's index catalogue when this engine optimizes."""
        return (self._opt_evaluator.catalog
                if self._opt_evaluator is not None else None)

    # -- construction -----------------------------------------------------------

    @classmethod
    def live(cls, sources, obs=NULL_OBS, check: bool = True,
             optimize: bool = True) -> "QueryEngine":
        """The one real construction path: a live engine over sources.

        Batch-builds the graph from each source's ``all_records()``,
        then subscribes to every source that supports it so later
        inserts flow straight into the graph.  Callers own exactly one
        live engine per source set and reuse it across syncs;
        short-lived engines (benchmark arms) should :meth:`detach`
        when done so sources stop feeding them.
        """
        streams = [source.all_records() for source in sources]
        with obs.span("oem.build", layer="pql") as span:
            graph = OEMGraph.build(itertools.chain(*streams))
            span.tag("nodes", len(graph))
        engine = cls(graph, check=check, obs=obs, optimize=optimize)
        for source in sources:
            # Prefer the batch feed (one graph splice per drained
            # group); sources without one fall back to the per-record
            # subscription.
            subscribe_batch = getattr(source, "subscribe_batch", None)
            if subscribe_batch is not None:
                subscribe_batch(engine._apply_batch)
                engine._subscriptions.append(
                    (source, engine._apply_batch, True))
                continue
            subscribe = getattr(source, "subscribe", None)
            if subscribe is not None:
                subscribe(engine._apply)
                engine._subscriptions.append(
                    (source, engine._apply, False))
        return engine

    def detach(self) -> int:
        """Unhook this engine's push-feed subscriptions from its
        sources (see :meth:`ProvenanceDatabase.unsubscribe`); the graph
        freezes at its current state.  Returns feeds detached."""
        detached = 0
        for source, callback, batched in self._subscriptions:
            name = "unsubscribe_batch" if batched else "unsubscribe"
            unhook = getattr(source, name, None)
            if unhook is not None and unhook(callback):
                detached += 1
        self._subscriptions = []
        return detached

    @classmethod
    def from_records(cls, records: Iterable[ProvenanceRecord],
                     obs=NULL_OBS) -> "QueryEngine":
        """Compatibility wrapper: a static snapshot engine over a raw
        record stream (no source to stay live against)."""
        return cls(OEMGraph.build(records), obs=obs)

    @classmethod
    def from_databases(cls, databases, obs=NULL_OBS) -> "QueryEngine":
        """Compatibility wrapper: delegates to :meth:`live`, so the
        returned engine tracks the databases as they grow."""
        return cls.live(databases, obs=obs)

    # -- live maintenance ----------------------------------------------------------

    def _apply(self, record: ProvenanceRecord) -> None:
        """Subscription callback: splice one record into the graph."""
        self.graph.apply(record)
        self.obs.inc("pql", "oem_records_applied")

    def _apply_batch(self, records) -> None:
        """Batch-subscription callback: splice one record group in."""
        count = self.graph.apply_batch(records)
        self.obs.inc("pql", "oem_records_applied", count)

    def apply_records(self, records: Iterable[ProvenanceRecord]) -> int:
        """Feed a batch of records into the live graph directly (for
        callers holding a stream rather than a subscribable source)."""
        with self.obs.span("oem.apply", layer="pql") as span:
            count = self.graph.apply_many(records)
            span.tag("records", count)
        self.obs.inc("pql", "oem_records_applied", count)
        return count

    # -- compilation ------------------------------------------------------------

    def plan(self, text: str) -> CompiledPlan:
        """Compile (and cache) one query, keyed by normalized text.

        Sets :attr:`_last_plan_cache_hit` so :meth:`execute` can report
        the cache status to the slow-query log without re-normalizing.
        """
        key = " ".join(text.split())
        cached = self._plans.get(key)
        self._last_plan_cache_hit = cached is not None
        if cached is None:
            with self.obs.span("pql.parse", layer="pql"):
                cached = CompiledPlan(key, parse(text))
            self._plans[key] = cached
            self.obs.inc("pql", "parses")
            self.obs.inc("pql", "plan_compiles")
            self.obs.event("pql.plan_compile", layer="pql", query=key)
        else:
            self.obs.inc("pql", "parse_cache_hits")
        return cached

    def parse(self, text: str) -> Query:
        """Parse (and cache) one query string."""
        return self.plan(text).query

    def vocabulary(self):
        """The lint vocabulary for this graph: the static ``Attr``
        universe widened by every label the graph actually holds.
        Recomputed when the graph's vocabulary epoch moves."""
        epoch = getattr(self.graph, "vocab_epoch", None)
        if self._vocabulary is None or epoch != self._vocab_epoch:
            from repro.lint.pqlcheck import Vocabulary
            self._vocabulary = Vocabulary.default().for_graph(self.graph)
            self._vocab_epoch = epoch
        return self._vocabulary

    def lint(self, text: str) -> list:
        """Static diagnostics for one query, without evaluating it."""
        from repro.lint.pqlcheck import check_query_text
        return check_query_text(text, self.vocabulary())

    # -- execution -----------------------------------------------------------

    def execute(self, text: str, check: bool | None = None,
                optimize: bool | None = None) -> list:
        """Run a PQL query; returns rows (see Evaluator.execute).

        ``optimize=False`` forces the naive pre-planner path for this
        call (benchmark baselines, planned-vs-naive ground truth);
        ``optimize=True`` forces the planner.  Default: the engine's
        construction-time mode.
        """
        started = time.perf_counter()
        if optimize is None:
            use_opt = self._optimize
        else:
            use_opt = optimize and isinstance(self.graph, OEMGraph)
        evaluator = self._evaluator_for(use_opt)
        with self.obs.span("pql.execute", layer="pql") as span:
            plan = self.plan(text)
            if self._check if check is None else check:
                vocabulary = self.vocabulary()      # refreshes epoch
                if plan.checked_epoch != self._vocab_epoch:
                    with self.obs.span("pql.check", layer="pql"):
                        from repro.lint.pqlcheck import (check_query,
                                                         raise_on_errors)
                        raise_on_errors(check_query(plan.query, vocabulary))
                    plan.checked_epoch = self._vocab_epoch
                else:
                    self.obs.inc("pql", "check_cache_hits")
            with self.obs.span("pql.eval", layer="pql"):
                if use_opt:
                    evaluator.plan_log = log = []
                    try:
                        rows = evaluator.execute(plan.query)
                    finally:
                        evaluator.plan_log = None
                    plan.binding_plans = log
                else:
                    rows = evaluator.execute(plan.query)
            span.tag("rows", len(rows))
        self.obs.inc("pql", "queries_executed")
        self.obs.inc("pql", "rows_returned", len(rows))
        # Evaluation timing is wall-clock: queries run above the simulated
        # machine, so perf work on the engine needs real seconds.
        elapsed = time.perf_counter() - started
        self.obs.observe("pql", "execute_wall_s", elapsed)
        if self.obs.journal.enabled:
            # The plan repr is only worth rendering when the journal
            # can actually record it.
            self.obs.slow_query(plan.text, elapsed,
                                cache_hit=self._last_plan_cache_hit,
                                rows=len(rows), plan=repr(plan.query))
        return rows

    def explain(self, text: str, check: bool | None = None) -> dict:
        """Run a query and report the planner's access-path choices.

        Returns ``{"query", "rows", "optimize", "bindings"}`` where
        each binding entry carries the chosen access path (index /
        scan / traversal), its detail, and estimated vs actual rows.
        EXPLAIN *executes* -- actual row counts are measured, not
        guessed -- and journals a ``pql.plan_explain`` event.
        """
        rows = self.execute(text, check=check)
        plan = self.plan(text)                      # cache hit
        bindings = [binding.as_dict()
                    for binding in (plan.binding_plans or [])]
        report = {
            "query": plan.text,
            "rows": len(rows),
            "optimize": self._optimize,
            "bindings": bindings,
        }
        self.obs.event("pql.plan_explain", layer="pql", always=True,
                       query=plan.text, rows=len(rows),
                       accesses=",".join(binding["access"]
                                         for binding in bindings))
        return report

    def execute_refs(self, text: str) -> list:
        """Like :meth:`execute`, but nodes come back as ObjectRefs."""
        out = []
        for row in self.execute(text):
            if isinstance(row, OEMNode):
                out.append(row.ref)
            elif isinstance(row, tuple):
                out.append(tuple(cell.ref if isinstance(cell, OEMNode)
                                 else cell for cell in row))
            else:
                out.append(row)
        return out
