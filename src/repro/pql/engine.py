"""Query engine: databases -> OEM graph -> parsed-and-evaluated PQL.

This is the component Waldo serves in the paper: it owns the graph built
from one or more volumes' provenance databases (cross-volume queries are
just a merged record stream) and runs PQL text against it.
"""

from __future__ import annotations

import itertools
import time
from typing import Iterable

from repro.core.records import ProvenanceRecord
from repro.obs import NULL_OBS
from repro.pql.ast import Query
from repro.pql.evaluator import Evaluator
from repro.pql.oem import OEMGraph, OEMNode
from repro.pql.parser import parse


class QueryEngine:
    """Parse + evaluate PQL over a provenance graph.

    By default every query runs through the ``repro.lint`` static
    pre-pass first: blocking diagnostics (unknown attributes, unbound
    variables, bad calls, ...) surface as positioned ``PQLError``s in
    microseconds, before the nested-loop join starts.  Pass
    ``check=False`` (construction-time or per call) to opt out.
    """

    def __init__(self, graph: OEMGraph, check: bool = True, obs=NULL_OBS):
        self.graph = graph
        self.obs = obs
        self._evaluator = Evaluator(graph)
        self._cache: dict[str, Query] = {}
        self._check = check
        self._vocabulary = None

    @classmethod
    def from_records(cls, records: Iterable[ProvenanceRecord],
                     obs=NULL_OBS) -> "QueryEngine":
        """Build an engine from a raw record stream."""
        return cls(OEMGraph.build(records), obs=obs)

    @classmethod
    def from_databases(cls, databases, obs=NULL_OBS) -> "QueryEngine":
        """Build an engine over several volumes' databases at once."""
        streams = [db.all_records() for db in databases]
        return cls(OEMGraph.build(itertools.chain(*streams)), obs=obs)

    def parse(self, text: str) -> Query:
        """Parse (and cache) one query string."""
        if text not in self._cache:
            with self.obs.span("pql.parse", layer="pql"):
                self._cache[text] = parse(text)
            self.obs.inc("pql", "parses")
        else:
            self.obs.inc("pql", "parse_cache_hits")
        return self._cache[text]

    def vocabulary(self):
        """The lint vocabulary for this graph: the static ``Attr``
        universe widened by every label the graph actually holds."""
        if self._vocabulary is None:
            from repro.lint.pqlcheck import Vocabulary
            self._vocabulary = Vocabulary.default().for_graph(self.graph)
        return self._vocabulary

    def lint(self, text: str) -> list:
        """Static diagnostics for one query, without evaluating it."""
        from repro.lint.pqlcheck import check_query_text
        return check_query_text(text, self.vocabulary())

    def execute(self, text: str, check: bool | None = None) -> list:
        """Run a PQL query; returns rows (see Evaluator.execute)."""
        started = time.perf_counter()
        with self.obs.span("pql.execute", layer="pql") as span:
            query = self.parse(text)
            if self._check if check is None else check:
                with self.obs.span("pql.check", layer="pql"):
                    from repro.lint.pqlcheck import (check_query,
                                                     raise_on_errors)
                    raise_on_errors(check_query(query, self.vocabulary()))
            with self.obs.span("pql.eval", layer="pql"):
                rows = self._evaluator.execute(query)
            span.tag("rows", len(rows))
        self.obs.inc("pql", "queries_executed")
        self.obs.inc("pql", "rows_returned", len(rows))
        # Evaluation timing is wall-clock: queries run above the simulated
        # machine, so perf work on the engine needs real seconds.
        self.obs.observe("pql", "execute_wall_s",
                         time.perf_counter() - started)
        return rows

    def execute_refs(self, text: str) -> list:
        """Like :meth:`execute`, but nodes come back as ObjectRefs."""
        out = []
        for row in self.execute(text):
            if isinstance(row, OEMNode):
                out.append(row.ref)
            elif isinstance(row, tuple):
                out.append(tuple(cell.ref if isinstance(cell, OEMNode)
                                 else cell for cell in row))
            else:
                out.append(row)
        return out
