"""Query engine: databases -> OEM graph -> parsed-and-evaluated PQL.

This is the component Waldo serves in the paper: it owns the graph built
from one or more volumes' provenance databases (cross-volume queries are
just a merged record stream) and runs PQL text against it.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.core.records import ProvenanceRecord
from repro.pql.ast import Query
from repro.pql.evaluator import Evaluator
from repro.pql.oem import OEMGraph, OEMNode
from repro.pql.parser import parse


class QueryEngine:
    """Parse + evaluate PQL over a provenance graph."""

    def __init__(self, graph: OEMGraph):
        self.graph = graph
        self._evaluator = Evaluator(graph)
        self._cache: dict[str, Query] = {}

    @classmethod
    def from_records(cls, records: Iterable[ProvenanceRecord]) -> "QueryEngine":
        """Build an engine from a raw record stream."""
        return cls(OEMGraph.build(records))

    @classmethod
    def from_databases(cls, databases) -> "QueryEngine":
        """Build an engine over several volumes' databases at once."""
        streams = [db.all_records() for db in databases]
        return cls(OEMGraph.build(itertools.chain(*streams)))

    def parse(self, text: str) -> Query:
        """Parse (and cache) one query string."""
        if text not in self._cache:
            self._cache[text] = parse(text)
        return self._cache[text]

    def execute(self, text: str) -> list:
        """Run a PQL query; returns rows (see Evaluator.execute)."""
        return self._evaluator.execute(self.parse(text))

    def execute_refs(self, text: str) -> list:
        """Like :meth:`execute`, but nodes come back as ObjectRefs."""
        out = []
        for row in self.execute(text):
            if isinstance(row, OEMNode):
                out.append(row.ref)
            elif isinstance(row, tuple):
                out.append(tuple(cell.ref if isinstance(cell, OEMNode)
                                 else cell for cell in row))
            else:
                out.append(row)
        return out
