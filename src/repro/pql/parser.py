"""PQL recursive-descent parser.

Grammar (EBNF-ish)::

    query       = 'select' ['distinct'] select_item {',' select_item}
                  'from' binding {[','] binding}
                  ['where' expr]
    select_item = expr ['as' IDENT]
    binding     = path 'as' IDENT
    path        = IDENT {step}
    step        = '.' edge [quant]
    edge        = ['^'] IDENT
                | '(' ['^'] IDENT {'|' ['^'] IDENT} ')'
    quant       = '*' | '+' | '?' | '{' NUM [',' [NUM]] '}'

    expr        = or_expr
    or_expr     = and_expr {'or' and_expr}
    and_expr    = not_expr {'and' not_expr}
    not_expr    = 'not' not_expr | comparison
    comparison  = additive [cmp_op additive | 'in' '(' query ')']
    additive    = multiplicative {('+' | '-') multiplicative}
    multiplicative = unary {('*' | '/' | '%') unary}
    unary       = '-' unary | primary
    primary     = STRING | NUMBER | 'true' | 'false'
                | IDENT '(' [expr {',' expr}] ')'       (function call)
                | path                                    (PathValue)
                | '(' query ')'                           (subquery)
                | '(' expr ')'
                | 'exists' '(' query ')'

In expression position the quantifiers ``*`` and ``+`` collide with the
arithmetic operators; they are treated as quantifiers only when the next
token cannot begin an operand (Lorel had the same wart).
"""

from __future__ import annotations

from repro.core.errors import PQLSyntaxError
from repro.pql import ast
from repro.pql.lexer import Token, tokenize

#: Comparison operator token texts.
_CMP_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})


def parse(text: str) -> ast.Query:
    """Parse a PQL query string into an AST."""
    return _Parser(tokenize(text)).parse_query(top_level=True)


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers ----------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, ahead: int = 1) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str) -> PQLSyntaxError:
        token = self._cur
        return PQLSyntaxError(f"{message}, found {token}",
                              token.line, token.column)

    def _expect_op(self, op: str) -> Token:
        if not self._cur.is_op(op):
            raise self._error(f"expected {op!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._cur.is_keyword(word):
            raise self._error(f"expected {word.upper()!r}")
        return self._advance()

    def _expect_ident(self) -> str:
        if self._cur.kind != "ident":
            raise self._error("expected an identifier")
        return self._advance().text

    # -- query ------------------------------------------------------------------------

    def parse_query(self, top_level: bool = False) -> ast.Query:
        start = self._cur
        self._expect_keyword("select")
        distinct = True
        if self._cur.is_keyword("distinct"):
            self._advance()
        select = [self._select_item()]
        while self._cur.is_op(","):
            self._advance()
            select.append(self._select_item())
        self._expect_keyword("from")
        bindings = [self._binding()]
        while True:
            if self._cur.is_op(","):
                self._advance()
            if self._cur.kind != "ident":
                break
            bindings.append(self._binding())
        where = None
        if self._cur.is_keyword("where"):
            self._advance()
            where = self.parse_expr()
        order = None
        if self._cur.is_keyword("order"):
            self._advance()
            self._expect_keyword("by")
            key = self.parse_expr()
            descending = False
            if self._cur.is_keyword("desc"):
                self._advance()
                descending = True
            elif self._cur.is_keyword("asc"):
                self._advance()
            order = ast.OrderBy(key, descending)
        limit = None
        if self._cur.is_keyword("limit"):
            self._advance()
            limit = self._number_int()
            if limit < 0:
                raise self._error("LIMIT must be non-negative")
        if top_level and self._cur.kind != "eof":
            raise self._error("unexpected trailing input")
        return ast.Query(tuple(select), tuple(bindings), where, distinct,
                         order, limit, line=start.line, column=start.column)

    def _select_item(self) -> ast.SelectItem:
        expr = self.parse_expr()
        alias = None
        if self._cur.is_keyword("as"):
            self._advance()
            alias = self._expect_ident()
        return ast.SelectItem(expr, alias)

    def _binding(self) -> ast.Binding:
        start = self._cur
        path = self._path(in_expression=False)
        self._expect_keyword("as")
        name = self._expect_ident()
        return ast.Binding(path, name, line=start.line, column=start.column)

    # -- paths ------------------------------------------------------------------------------

    def _path(self, in_expression: bool) -> ast.Path:
        start = self._cur
        root = self._expect_ident()
        steps: list[ast.Step] = []
        while self._cur.is_op("."):
            self._advance()
            edge = self._edge_expr()
            quant = self._quantifier(in_expression)
            steps.append(ast.Step(edge, quant))
        return ast.Path(root, tuple(steps),
                        line=start.line, column=start.column)

    def _edge_expr(self) -> ast.EdgeExpr:
        if self._cur.is_op("("):
            self._advance()
            options = [self._edge_name()]
            while self._cur.is_op("|"):
                self._advance()
                options.append(self._edge_name())
            self._expect_op(")")
            return ast.EdgeAlt(tuple(options))
        return self._edge_name()

    def _edge_name(self) -> ast.EdgeName:
        start = self._cur
        reverse = False
        if self._cur.is_op("^"):
            self._advance()
            reverse = True
        return ast.EdgeName(self._expect_ident(), reverse,
                            line=start.line, column=start.column)

    def _quantifier(self, in_expression: bool) -> ast.Quantifier:
        token = self._cur
        if token.is_op("*") or token.is_op("+"):
            if in_expression and self._operand_follows():
                return ast.Quantifier()        # it is arithmetic, not a quant
            self._advance()
            return (ast.Quantifier.star() if token.text == "*"
                    else ast.Quantifier.plus())
        if token.is_op("?"):
            self._advance()
            return ast.Quantifier.opt()
        if token.is_op("{"):
            self._advance()
            minimum = self._number_int()
            maximum: int | None = minimum
            if self._cur.is_op(","):
                self._advance()
                maximum = None
                if self._cur.kind == "number":
                    maximum = self._number_int()
            self._expect_op("}")
            if maximum is not None and maximum < minimum:
                raise self._error("quantifier maximum below minimum")
            return ast.Quantifier(minimum, maximum)
        return ast.Quantifier()

    def _operand_follows(self) -> bool:
        """After a '*' or '+' in expression position: is the *next* token
        the start of an operand (making the symbol arithmetic)?"""
        nxt = self._peek()
        if nxt.kind in ("ident", "number", "string"):
            return True
        if nxt.kind == "keyword" and nxt.text in ("true", "false", "not",
                                                  "exists"):
            return True
        return nxt.is_op("(") or nxt.is_op("-")

    def _number_int(self) -> int:
        if self._cur.kind != "number":
            raise self._error("expected a number")
        text = self._advance().text
        if "." in text:
            raise self._error("expected an integer")
        return int(text)

    # -- expressions -----------------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        operands = [self._and_expr()]
        while self._cur.is_keyword("or"):
            self._advance()
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return ast.BoolOp("or", tuple(operands))

    def _and_expr(self) -> ast.Expr:
        operands = [self._not_expr()]
        while self._cur.is_keyword("and"):
            self._advance()
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return ast.BoolOp("and", tuple(operands))

    def _not_expr(self) -> ast.Expr:
        if self._cur.is_keyword("not"):
            self._advance()
            return ast.Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        if self._cur.kind == "op" and self._cur.text in _CMP_OPS:
            token = self._advance()
            right = self._additive()
            return ast.Compare(token.text, left, right,
                               line=token.line, column=token.column)
        if self._cur.is_keyword("like"):
            token = self._advance()
            return ast.Compare("like", left, self._additive(),
                               line=token.line, column=token.column)
        if self._cur.is_keyword("not") and self._peek().is_keyword("like"):
            self._advance()
            token = self._advance()
            return ast.Not(ast.Compare("like", left, self._additive(),
                                       line=token.line, column=token.column))
        if self._cur.is_keyword("in"):
            self._advance()
            self._expect_op("(")
            query = self.parse_query()
            self._expect_op(")")
            return ast.InQuery(left, query)
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while self._cur.kind == "op" and self._cur.text in ("+", "-"):
            op = self._advance().text
            left = ast.Arith(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while self._cur.kind == "op" and self._cur.text in ("*", "/", "%"):
            op = self._advance().text
            left = ast.Arith(op, left, self._unary())
        return left

    def _unary(self) -> ast.Expr:
        if self._cur.is_op("-"):
            self._advance()
            return ast.Neg(self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._cur
        if token.kind == "string":
            self._advance()
            return ast.Literal(token.text)
        if token.kind == "number":
            self._advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return ast.Literal(value)
        if token.is_keyword("true"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("exists"):
            self._advance()
            self._expect_op("(")
            query = self.parse_query()
            self._expect_op(")")
            return ast.ExistsQuery(query)
        if token.is_op("("):
            if self._peek().is_keyword("select"):
                self._advance()
                query = self.parse_query()
                self._expect_op(")")
                # A bare parenthesised subquery in expression position is
                # only meaningful inside IN/EXISTS, but allow it: treated
                # as its value set by the evaluator.
                return ast.ExistsQuery(query)
            self._advance()
            inner = self.parse_expr()
            self._expect_op(")")
            return inner
        if token.kind == "ident":
            if self._peek().is_op("("):
                name = self._advance().text
                self._advance()                 # '('
                args: list[ast.Expr] = []
                if not self._cur.is_op(")"):
                    args.append(self.parse_expr())
                    while self._cur.is_op(","):
                        self._advance()
                        args.append(self.parse_expr())
                self._expect_op(")")
                return ast.Call(name.lower(), tuple(args),
                                line=token.line, column=token.column)
            return ast.PathValue(self._path(in_expression=True))
        raise self._error("expected an expression")
