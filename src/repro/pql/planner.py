"""Cost-based access-path planning for FROM bindings.

The evaluator's nested-loop join expands one binding at a time; the
planner decides, per binding, *where the candidate nodes come from*:

* ``member_scan``     -- walk the Provenance root member class (the
  pre-planner behaviour, and still correct for everything);
* ``equality_index``  -- a WHERE conjunct ``V.label = literal`` serves
  the binding from the secondary hash index on ``label``
  (:class:`repro.pql.indexes.EqualityIndex`; ``name`` rides the
  graph's own name index);
* ``range_index``     -- a conjunct ``V.label < n`` / ``>= n`` / ...
  serves it from the sorted range index;
* ``traverse``        -- the binding is rooted in another variable
  (``F.input* as A``): candidates come from walking the graph, where
  the evaluator separately picks ancestry view vs CSR vs live dicts
  per step.

Costs are actual row counts, not guesses: the member class length and
the index bucket / range width are both O(1) reads against maintained
structures, so "cost-based" here means comparing true candidate-set
sizes and taking the smallest.  Every choice is recorded as a
:class:`BindingPlan` (estimated vs actual rows, access detail), which
the engine hangs off the :class:`~repro.pql.engine.CompiledPlan` and
serves through EXPLAIN.

Soundness mirrors the old name-only pushdown exactly: only top-level
AND conjuncts count, only variables bound exactly once may be pruned
(the evaluator pre-filters), and the WHERE clause always re-runs
afterwards -- an index only ever *narrows the scan*, it never decides
the answer.  Comparisons are existential over multi-valued atoms, and
both index flavours return exactly the nodes carrying a matching atom
value, a superset of the rows the WHERE clause keeps.
"""

from __future__ import annotations

from typing import Optional

from repro.pql import ast
from repro.pql.oem import OEMGraph, OEMNode

#: Operator flip for ``literal op V.label`` orientation.
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

_RANGE_OPS = frozenset(_FLIP)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _plain_label(step: ast.Step) -> Optional[str]:
    """The forward edge label of an unquantified plain step, if any."""
    if (isinstance(step.edge, ast.EdgeName) and not step.edge.reverse
            and step.quantifier == ast.Quantifier()):
        return step.edge.name
    return None


def _path_text(path: ast.Path) -> str:
    parts = [path.root]
    for step in path.steps:
        edge = step.edge
        if isinstance(edge, ast.EdgeName):
            parts.append(("^" if edge.reverse else "") + edge.name)
        else:
            parts.append("(...)")
    return ".".join(parts)


class BindingPlan:
    """One binding's chosen access path, with estimate and outcome.

    ``est_rows`` is the candidate-set size the planner compared on
    (None when the access path has no precomputed size, e.g. a
    traversal); ``actual_rows`` accumulates the rows the binding
    actually contributed across the join (candidates times enclosing
    tuples for pushed bindings).  ``notes`` counts the traversal
    mechanisms steps under this binding used (``ancestry_view``,
    ``csr_bfs``, ``dict_walk``).
    """

    __slots__ = ("variable", "access", "detail", "est_rows",
                 "actual_rows", "notes")

    def __init__(self, variable: str, access: str,
                 detail: Optional[dict] = None,
                 est_rows: Optional[int] = None):
        self.variable = variable
        self.access = access
        self.detail = detail or {}
        self.est_rows = est_rows
        self.actual_rows = 0
        self.notes: dict[str, int] = {}

    def as_dict(self) -> dict:
        out = {
            "variable": self.variable,
            "access": self.access,
            "est_rows": self.est_rows,
            "actual_rows": self.actual_rows,
        }
        if self.detail:
            out["detail"] = dict(self.detail)
        if self.notes:
            out["steps"] = dict(self.notes)
        return out

    def __repr__(self) -> str:
        return (f"<BindingPlan {self.variable} via {self.access} "
                f"est={self.est_rows} actual={self.actual_rows}>")


def extract_filters(where: Optional[ast.Expr]) -> dict:
    """Indexable predicates per variable from top-level AND conjuncts.

    Returns ``{variable: [predicate, ...]}`` where a predicate is
    ``("eq", label, value)`` for ``V.label = literal`` or
    ``("range", label, low, low_inc, high, high_inc)`` for a numeric
    inequality, either operand order.  OR branches, negations, and
    anything else stay un-extracted (the WHERE clause handles them).
    """
    filters: dict[str, list[tuple]] = {}
    if where is None:
        return filters
    conjuncts = (list(where.operands)
                 if isinstance(where, ast.BoolOp) and where.op == "and"
                 else [where])
    for conjunct in conjuncts:
        if not isinstance(conjunct, ast.Compare):
            continue
        op = conjunct.op
        if op != "=" and op not in _RANGE_OPS:
            continue
        for lhs, rhs, flipped in ((conjunct.left, conjunct.right, False),
                                  (conjunct.right, conjunct.left, True)):
            if not (isinstance(lhs, ast.PathValue)
                    and len(lhs.path.steps) == 1
                    and isinstance(rhs, ast.Literal)):
                continue
            label = _plain_label(lhs.path.steps[0])
            if label is None:
                continue
            variable = lhs.path.root
            value = rhs.value
            if op == "=":
                filters.setdefault(variable, []).append(
                    ("eq", label, value))
            elif _is_number(value):
                effective = _FLIP[op] if flipped else op
                if effective == "<":
                    pred = ("range", label, None, False, value, False)
                elif effective == "<=":
                    pred = ("range", label, None, False, value, True)
                elif effective == ">":
                    pred = ("range", label, value, False, None, False)
                else:                                   # >=
                    pred = ("range", label, value, True, None, False)
                filters.setdefault(variable, []).append(pred)
            break
    return filters


def member_of(path: ast.Path) -> Optional[str]:
    """The member name of a pure ``Provenance.member`` binding path."""
    if path.root != OEMGraph.ROOT or len(path.steps) != 1:
        return None
    return _plain_label(path.steps[0])


def plan_binding(evaluator, binding: ast.Binding, filters: dict
                 ) -> tuple[Optional[list[OEMNode]], BindingPlan]:
    """Choose the access path for one binding.

    Returns ``(candidates, plan)``: ``candidates`` is the pruned node
    list when an index serves the binding, or None when the evaluator
    should expand the path itself (member scan / traversal).
    """
    graph = evaluator.graph
    catalog = evaluator.catalog
    path = binding.path
    member = member_of(path)
    if member is None:
        access = ("member_scan" if path.root == OEMGraph.ROOT
                  else "traverse")
        return None, BindingPlan(binding.name, access,
                                 detail={"path": _path_text(path)})

    scan_cost = graph.member_count(member)
    best_access = "member_scan"
    best_detail: dict = {"member": member}
    best_est = scan_cost
    best_pred: Optional[tuple] = None
    for pred in filters.get(binding.name, ()):
        if pred[0] == "eq":
            _, label, value = pred
            est = catalog.equality_estimate(label, value)
            detail = {"index": label, "op": "=", "value": value}
            access = "equality_index"
        else:
            _, label, low, low_inc, high, high_inc = pred
            est = catalog.range(label).estimate(low, low_inc,
                                                high, high_inc)
            detail = {"index": label, "op": "range",
                      "low": low, "high": high}
            access = "range_index"
        if est < best_est:
            best_access, best_detail, best_est = access, detail, est
            best_pred = pred

    best_detail["member"] = member
    plan = BindingPlan(binding.name, best_access, detail=best_detail,
                       est_rows=best_est)
    if best_pred is None:
        catalog.index_misses += 1
        return None, plan
    catalog.index_hits += 1
    if best_pred[0] == "eq":
        nodes = catalog.equality_lookup(best_pred[1], best_pred[2])
    else:
        _, label, low, low_inc, high, high_inc = best_pred
        nodes = catalog.range(label).lookup(low, low_inc, high, high_inc)
    if member != "node":
        nodes = [node for node in nodes
                 if isinstance(node.type, str)
                 and node.type.lower() == member]
    # Range lookups repeat a node once per matching value; candidate
    # sets are node sets (order preserved).
    seen: set[int] = set()
    unique: list[OEMNode] = []
    for node in nodes:
        key = id(node)
        if key not in seen:
            seen.add(key)
            unique.append(node)
    return unique, plan
