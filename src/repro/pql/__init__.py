"""PQL -- the Path Query Language (paper section 5.7).

PQL ("pickle") derives from Lorel, the query language of Stanford's Lore
semistructured database, adapted per the requirements the paper derived
from shadowing computational-science users:

* the basic model is paths through graphs;
* paths are first-class language-level objects (FROM bindings);
* path matching is by regular expressions over graph edges
  (``input*``, ``+``, ``?``, ``{n,m}``, alternation, and the Lorel
  extension PASSv2 needed: reverse traversal ``^input``);
* the language has sub-queries and aggregation.

The canonical example from the paper::

    select Ancestor
    from Provenance.file as Atlas
         Atlas.input* as Ancestor
    where Atlas.name = "atlas-x.gif"

Data model: OEM -- a schema-less graph of objects holding atom values
and named linkages (:mod:`repro.pql.oem`), built from the provenance
databases by :class:`repro.pql.engine.QueryEngine`.
"""

from repro.pql.engine import QueryEngine
from repro.pql.oem import OEMGraph, OEMNode

__all__ = ["OEMGraph", "OEMNode", "QueryEngine"]
