"""Pnode numbers and object identity.

A *pnode number* is the handle for an object's provenance: "akin to an
inode number, but never recycled" (paper section 5.2).  Identity of a
specific immutable state of an object is the pair (pnode, version) --
versions are created by ``pass_freeze`` (cycle avoidance), never reused.

Pnode numbers are globally unique across the whole simulated installation.
We partition the 63-bit space by volume: the top bits carry the volume id
that allocated the number, the low bits a per-volume counter.  Volume id 0
is the *transient* space used for objects that are not (yet) persistent --
processes, pipes, and ``pass_mkobj`` objects.  The distributor later
decides which volume's log such an object's provenance lands in; the pnode
number itself never changes (that is what makes ``pass_reviveobj`` safe
across crashes: a pnode is "just a number").
"""

from __future__ import annotations

from typing import NamedTuple

#: Number of low bits reserved for the per-volume counter.
_LOCAL_BITS = 40
_LOCAL_MASK = (1 << _LOCAL_BITS) - 1

#: Volume id of the transient (not-yet-persistent) pnode space.
TRANSIENT_VOLUME = 0


class ObjectRef(NamedTuple):
    """Identity of one immutable version of one object.

    ``pnode``   -- the object's pnode number (never recycled).
    ``version`` -- the version as of the reference; bumped by freeze.
    """

    pnode: int
    version: int

    def __str__(self) -> str:
        return f"{self.pnode}:{self.version}"

    @property
    def volume_id(self) -> int:
        """Id of the volume whose allocator issued this pnode."""
        return volume_of(self.pnode)


def make_pnode(volume_id: int, local: int) -> int:
    """Compose a pnode number from a volume id and a local counter."""
    if volume_id < 0 or local < 0:
        raise ValueError("volume id and local counter must be non-negative")
    if local > _LOCAL_MASK:
        raise ValueError(f"per-volume pnode counter overflow: {local}")
    return (volume_id << _LOCAL_BITS) | local


def volume_of(pnode: int) -> int:
    """Return the volume id encoded in a pnode number."""
    return pnode >> _LOCAL_BITS


def local_of(pnode: int) -> int:
    """Return the per-volume counter encoded in a pnode number."""
    return pnode & _LOCAL_MASK


#: 64-bit odd multiplier (golden-ratio / splitmix64 constant) used to
#: scatter the sequential local counters before the modulo below.
_SHARD_MIX = 0x9E3779B97F4A7C15


def shard_of(pnode: int, shards: int) -> int:
    """Stable intra-volume shard index for a subject pnode.

    Pnode numbers are sequential per volume, so a bare modulo would
    stripe consecutive files round-robin but correlate with workload
    structure; mixing the bits first spreads any allocation pattern
    evenly.  All records of a subject share its pnode, so routing by
    subject keeps a subject's record order intact within one shard.
    """
    if shards <= 1:
        return 0
    mixed = (pnode * _SHARD_MIX) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 29
    return mixed % shards


class PnodeAllocator:
    """Monotonic, never-recycled pnode allocator for one volume.

    The first pnode issued is ``make_pnode(volume_id, 1)``; local counter 0
    is reserved so that a zero pnode can mean "unassigned".
    """

    def __init__(self, volume_id: int, start: int = 1):
        if start < 1:
            raise ValueError("pnode counters start at 1; 0 is reserved")
        self.volume_id = volume_id
        self._next = start

    def allocate(self) -> int:
        """Return a fresh pnode number; never returns the same one twice."""
        pnode = make_pnode(self.volume_id, self._next)
        self._next += 1
        return pnode

    @property
    def high_water(self) -> int:
        """The next local counter value (for persistence/recovery)."""
        return self._next

    def restore(self, high_water: int) -> None:
        """Reset the counter after recovery; may only move forward."""
        if high_water < self._next:
            raise ValueError("pnode allocator may never move backwards")
        self._next = high_water
