"""Provenance records, attributes, and bundles.

A provenance record is "a structure containing a single unit of
provenance: an attribute/value pair, where the attribute is an identifier
and the value might be a plain value (integer, string, etc.) or a
cross-reference to another object" (paper section 5.2).

Each record here additionally carries its *subject* -- the (pnode, version)
the attribute describes -- because records travel in bundles that may
describe many different objects at once (several processes and pipes in a
shell pipeline, for example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.core.errors import InvalidRecord
from repro.core.pnode import ObjectRef

#: Types a record value may take.  ObjectRef marks a cross-reference.
Value = Union[int, float, str, bytes, bool, ObjectRef]


class Attr:
    """Well-known provenance attribute names.

    The core system and each provenance-aware application contribute
    attributes; Table 1 of the paper lists the application-specific ones.
    Attributes whose conventional value is a cross-reference are listed in
    :data:`Attr.XREF_ATTRS`.
    """

    # -- core (observer-generated) -------------------------------------
    TYPE = "TYPE"                  # object kind: FILE, PROCESS, PIPE, ...
    NAME = "NAME"                  # human name: path, program, operator
    INPUT = "INPUT"                # ancestry edge: subject depends on value
    ARGV = "ARGV"                  # process arguments
    ENV = "ENV"                    # process environment
    PREV_VERSION = "PREV_VERSION"  # link from version N to version N-1
    FORKPARENT = "FORKPARENT"      # child process -> parent process
    EXEC = "EXEC"                  # process -> binary it executed
    PID = "PID"                    # process id (informational)
    KERNEL = "KERNEL"              # kernel module / version string

    # -- Lasagna / PA-NFS transaction framing (Table 1, PA-NFS rows) ----
    BEGINTXN = "BEGINTXN"          # beginning record of a transaction
    ENDTXN = "ENDTXN"              # terminating record of a transaction
    FREEZE = "FREEZE"              # freeze record sent in pass_write

    # -- PA-Kepler (Table 1) --------------------------------------------
    PARAMS = "PARAMS"              # operator parameters

    # -- PA-links (Table 1) ----------------------------------------------
    VISITED_URL = "VISITED_URL"    # session visited a URL
    FILE_URL = "FILE_URL"          # URL a downloaded file came from
    CURRENT_URL = "CURRENT_URL"    # page being viewed at download time

    # -- PA-NFS bookkeeping ----------------------------------------------
    BRANCH_OF = "BRANCH_OF"        # close-to-open version branch marker

    # -- misc -------------------------------------------------------------
    MD5 = "MD5"                    # data checksum recorded at write time
    ANNOTATION = "ANNOTATION"      # free-form user annotation
    TIME = "TIME"                  # simulated time an object/version began

    #: Attributes whose value is conventionally an ObjectRef.
    XREF_ATTRS = frozenset(
        {INPUT, PREV_VERSION, FORKPARENT, EXEC, BRANCH_OF}
    )

    #: Attributes that express ancestry (edges followed by "input" queries).
    ANCESTRY_ATTRS = frozenset({INPUT, PREV_VERSION, FORKPARENT, EXEC})


class ObjType:
    """Conventional values of the TYPE attribute."""

    FILE = "FILE"
    DIR = "DIR"
    PROCESS = "PROCESS"
    PIPE = "PIPE"
    NP_FILE = "NP_FILE"        # file on a non-PASS volume
    OPERATOR = "OPERATOR"      # PA-Kepler workflow operator
    SESSION = "SESSION"        # PA-links browser session
    FUNCTION = "FUNCTION"      # PA-Python wrapped callable
    INVOCATION = "INVOCATION"  # PA-Python one call of a function
    PYOBJECT = "PYOBJECT"      # PA-Python wrapped data object
    DATASET = "DATASET"        # logical grouping of files


@dataclass(frozen=True)
class ProvenanceRecord:
    """One unit of provenance: ``subject.attr = value``.

    ``subject`` is the (pnode, version) of the object the record
    describes.  ``value`` is a plain value or a cross-reference
    (:class:`ObjectRef`) to another object, typically an ancestor.
    """

    subject: ObjectRef
    attr: str
    value: Value

    def __post_init__(self) -> None:
        if not isinstance(self.subject, ObjectRef):
            raise InvalidRecord(f"subject must be an ObjectRef: {self.subject!r}")
        if not self.attr or not isinstance(self.attr, str):
            raise InvalidRecord(f"attribute must be a non-empty string: {self.attr!r}")
        if not isinstance(self.value, (int, float, str, bytes, bool, ObjectRef)):
            raise InvalidRecord(f"unsupported value type: {type(self.value).__name__}")

    @property
    def is_xref(self) -> bool:
        """True when the value cross-references another object."""
        return isinstance(self.value, ObjectRef)

    @property
    def is_ancestry(self) -> bool:
        """True when the record expresses an ancestry (dependency) edge."""
        return self.attr in Attr.ANCESTRY_ATTRS and self.is_xref

    def key(self) -> tuple:
        """Canonical identity used for duplicate elimination."""
        return (self.subject, self.attr, _value_key(self.value))

    def __str__(self) -> str:
        return f"{self.subject} {self.attr}={self.value!r}"


def make_record(subject: ObjectRef, attr: str, value: Value) -> "ProvenanceRecord":
    """Trusted-path record constructor for internal pipeline stages.

    The batch analyzer validates subject/attr/value itself (once per
    run of protos, with cheap class tests) before minting records, so
    re-running the frozen-dataclass ``__init__``/``__post_init__``
    ceremony -- three ``object.__setattr__`` calls plus three
    ``isinstance`` checks per record -- would only repeat work.  The
    returned record is indistinguishable from one built normally.
    Callers *must* guarantee the field invariants ``__post_init__``
    enforces; external producers go through ``ProvenanceRecord(...)``.
    """
    record = ProvenanceRecord.__new__(ProvenanceRecord)
    fields = record.__dict__
    fields["subject"] = subject
    fields["attr"] = attr
    fields["value"] = value
    return record


def _value_key(value: Value) -> tuple:
    """Return a hashable, type-disambiguated key for a record value.

    Needed because ``1 == True`` and ``ObjectRef`` is itself a tuple; a
    plain value would collide across types in a set.
    """
    if isinstance(value, ObjectRef):
        return ("ref", value.pnode, value.version)
    return (type(value).__name__, value)


class RecordBatch:
    """An ordered batch of finalized records on the batched ingest path.

    The carrier the batch pipeline (analyzer ``submit_batch`` ->
    distributor ``flush_batch`` -> Lasagna ``append_provenance`` -> log
    ``append_batch``) hands between layers.  Unlike :class:`Bundle` it
    performs no per-item validation: every producer is an internal
    pipeline stage that only ever holds already-validated
    :class:`ProvenanceRecord` instances, so re-checking each one would
    put a per-record cost back on the path batching exists to remove.
    It iterates and sizes like a Bundle, so sinks accept either.
    """

    __slots__ = ("records",)

    def __init__(self, records: Optional[list] = None):
        #: The backing list, in admission order.  Owned by the batch:
        #: producers hand the list over rather than copying it.
        self.records: list[ProvenanceRecord] = (
            records if records is not None else [])

    def add(self, record: ProvenanceRecord) -> None:
        """Append one record."""
        self.records.append(record)

    def extend(self, records: Iterable[ProvenanceRecord]) -> None:
        """Append many records."""
        self.records.extend(records)

    def subjects(self) -> list[ObjectRef]:
        """Distinct subjects in batch order (first occurrence wins)."""
        seen: dict[ObjectRef, None] = {}
        for record in self.records:
            seen.setdefault(record.subject, None)
        return list(seen)

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __repr__(self) -> str:
        return f"RecordBatch({len(self.records)} records)"


class Bundle:
    """An ordered collection of records describing possibly many objects.

    "A provenance bundle is an array of object handles and records, each
    potentially describing a different object" (section 5.2).  The bundle
    is what ``pass_write`` carries alongside data so that provenance and
    data move through the system together.
    """

    def __init__(self, records: Iterable[ProvenanceRecord] = ()):
        self._records: list[ProvenanceRecord] = list(records)
        for record in self._records:
            if not isinstance(record, ProvenanceRecord):
                raise InvalidRecord(f"bundle items must be records: {record!r}")

    def add(self, record: ProvenanceRecord) -> None:
        """Append one record to the bundle."""
        if not isinstance(record, ProvenanceRecord):
            raise InvalidRecord(f"bundle items must be records: {record!r}")
        self._records.append(record)

    def extend(self, records: Iterable[ProvenanceRecord]) -> None:
        """Append many records to the bundle."""
        for record in records:
            self.add(record)

    def subjects(self) -> list[ObjectRef]:
        """Distinct subjects in bundle order (first occurrence wins)."""
        seen: dict[ObjectRef, None] = {}
        for record in self._records:
            seen.setdefault(record.subject, None)
        return list(seen)

    def __iter__(self):
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def __repr__(self) -> str:
        return f"Bundle({len(self._records)} records)"
