"""libpass: the user-level DPAPI (paper Figure 2, section 5.2).

Applications link against libpass to become provenance-aware.  The
library speaks in file descriptors, exactly like the kernel DPAPI:
``pass_mkobj`` returns a descriptor referencing an application-level
object; ``pass_write`` can target a file descriptor or an object
descriptor; disclosed records are built with :meth:`LibPass.record`
using descriptors as subjects and :meth:`LibPass.ref_of` for
cross-references.

Every call enters the kernel through the *observer* -- the designated
entry point for disclosed provenance -- so the kernel can add its own
records (e.g. the application -> file dependency on a data write).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.analyzer import ProtoRecord
from repro.core.errors import BadFileDescriptor, ProvenanceError
from repro.core.pnode import ObjectRef
from repro.core.records import Value
from repro.kernel.process import FileDescriptor, Process


class LibPass:
    """User-level DPAPI bound to one process."""

    def __init__(self, kernel, proc: Process):
        self.kernel = kernel
        self.proc = proc

    # -- plumbing ---------------------------------------------------------------

    def _observer(self):
        observer = self.kernel.observer
        if observer is None or not self.kernel.interceptor.enabled:
            raise ProvenanceError(
                "provenance collection is not enabled on this kernel"
            )
        return observer

    def available(self) -> bool:
        """Is the DPAPI live -- provenance collection enabled on this
        kernel?  Applications probe this to degrade gracefully on
        non-PASS systems."""
        try:
            self._observer()
        except ProvenanceError:
            return False
        return True

    def _charge(self) -> None:
        self.kernel.clock.advance(self.kernel.params.cpu.syscall,
                                  "syscall_cpu")

    def _target(self, fd: int):
        fdesc = self.proc.lookup_fd(fd)
        target = fdesc.target()
        if target is None:
            raise BadFileDescriptor(f"fd {fd} has no provenanced object")
        return fdesc, target

    # -- record construction helpers ------------------------------------------------

    def ref_of(self, fd: int) -> ObjectRef:
        """Current (pnode, version) identity of the object behind ``fd``."""
        observer = self._observer()
        fdesc, target = self._target(fd)
        if getattr(target, "pnode", 0) == 0:
            observer.adopt(target)
        return target.ref()

    def record(self, subject_fd: int, attr: str, value: Value) -> ProtoRecord:
        """Build a disclosed record with the object behind ``subject_fd``
        as subject.  Pass the result to :meth:`pass_write`."""
        observer = self._observer()
        _, target = self._target(subject_fd)
        if getattr(target, "pnode", 0) == 0:
            observer.adopt(target)
        return ProtoRecord(target, attr, value)

    def record_many(self, subject_fd: int, attr: str,
                    values: Iterable[Value]) -> list[ProtoRecord]:
        """Build many disclosed records about one subject in one call.

        The bulk companion to :meth:`record`: the descriptor is resolved
        (and the subject adopted) once for the whole group instead of
        per record, which is what tight disclosure loops -- application
        checkpoints, batch annotators -- want before handing the group
        to :meth:`pass_write`.
        """
        observer = self._observer()
        _, target = self._target(subject_fd)
        if getattr(target, "pnode", 0) == 0:
            observer.adopt(target)
        new = ProtoRecord.__new__
        protos: list[ProtoRecord] = []
        append = protos.append
        for value in values:
            # Bulk fast path: fill the instance dict directly instead of
            # running the dataclass __init__ once per record.
            proto = new(ProtoRecord)
            proto.__dict__ = {"subject": target, "attr": attr,
                              "value": value}
            append(proto)
        return protos

    # -- the six DPAPI calls ------------------------------------------------------------

    def pass_read(self, fd: int, length: int = -1) -> tuple[bytes, ObjectRef]:
        """Read data *and* the exact identity of what was read."""
        self._charge()
        observer = self._observer()
        fdesc, target = self._target(fd)
        if fdesc.kind != FileDescriptor.FILE:
            raise BadFileDescriptor("pass_read targets file descriptors")
        inode = fdesc.inode
        if length < 0:
            length = max(0, inode.size - fdesc.offset)
        ref = inode.ref() if inode.pnode else None
        data = observer.on_read(self.proc, inode, fdesc.path,
                                fdesc.offset, length)
        fdesc.offset += len(data)
        return data, (ref or inode.ref())

    def pass_write(self, fd: int, data: Optional[bytes] = None,
                   records: Iterable[ProtoRecord] = (),
                   length: Optional[int] = None) -> int:
        """Write data together with a bundle of disclosed records.

        With ``data is None`` and ``length is None`` this discloses
        provenance only (no data moves) -- how applications attach
        semantic records to their ``pass_mkobj`` objects.
        """
        self._charge()
        observer = self._observer()
        fdesc, target = self._target(fd)
        if fdesc.kind == FileDescriptor.FILE:
            offset = fdesc.inode.size if fdesc.append else fdesc.offset
            written = observer.disclosed_write(
                self.proc, fdesc.inode, fdesc.path, offset,
                data, length, records,
            )
            fdesc.offset = offset + written
            return written
        # Object descriptors (pass_mkobj) carry no data.
        if data is not None or length is not None:
            raise BadFileDescriptor(
                "cannot write data to a pass_mkobj descriptor"
            )
        observer.disclosed_records(self.proc, records)
        return 0

    def pass_freeze(self, fd: int) -> int:
        """Force a new version of the object behind ``fd``."""
        self._charge()
        observer = self._observer()
        _, target = self._target(fd)
        return observer.freeze(target)

    def pass_mkobj(self, volume_hint: Optional[str] = None) -> int:
        """Create an application-level object; returns a descriptor."""
        self._charge()
        observer = self._observer()
        obj = observer.mkobj(volume_hint)
        fdesc = FileDescriptor(FileDescriptor.PASSOBJ, passobj=obj,
                               readable=False, writable=False)
        return self.proc.install_fd(fdesc)

    def pass_reviveobj(self, pnode: int, version: int) -> int:
        """Reattach to an object made earlier with pass_mkobj."""
        self._charge()
        observer = self._observer()
        obj = observer.reviveobj(pnode, version)
        fdesc = FileDescriptor(FileDescriptor.PASSOBJ, passobj=obj,
                               readable=False, writable=False)
        return self.proc.install_fd(fdesc)

    def pass_sync(self, fd: int) -> int:
        """Persist the object's provenance even without descendants."""
        self._charge()
        observer = self._observer()
        _, target = self._target(fd)
        hint = getattr(target, "volume_hint", None)
        return observer.sync(target.pnode, hint)
