"""The Disclosed Provenance API (DPAPI), section 5.2.

The DPAPI is the universal interface of PASSv2: applications use it to
disclose provenance to the kernel, kernel components use it among
themselves, and the same operations travel over the wire to PA-NFS
servers.  Six calls::

    pass_read(obj)                    -> (data, ObjectRef)
    pass_write(obj, data, bundle)
    pass_freeze(obj)                  -> new version
    pass_mkobj()                      -> handle
    pass_reviveobj(pnode, version)    -> handle
    pass_sync(obj)

plus two concepts: the *pnode number* and the *provenance record*
(:mod:`repro.core.pnode`, :mod:`repro.core.records`).

This module defines the abstract interface and :class:`PassObject`, the
kind of object ``pass_mkobj`` creates: a provenanced entity with no file
system manifestation (a browser session, a workflow operator, a data
set).
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.core.pnode import ObjectRef
from repro.core.records import Bundle


class PassObject:
    """An application-defined provenanced object (``pass_mkobj``).

    Referenced like a file (through a descriptor) but with no data; it
    exists to carry provenance records and to anchor relationships
    between abstraction layers.  Its provenance is flushed to disk only
    if it becomes part of the ancestry of a persistent object, or via
    ``pass_sync``.
    """

    def __init__(self, pnode: int, volume_hint: Optional[str] = None):
        self.pnode = pnode
        self.version = 0
        #: Name of the PASS volume the creator wants the provenance on,
        #: or None to inherit from a persistent descendant / the default.
        self.volume_hint = volume_hint

    def ref(self) -> ObjectRef:
        return ObjectRef(self.pnode, self.version)

    def __repr__(self) -> str:
        return f"<PassObject pnode={self.pnode} v{self.version}>"


class DPAPI(abc.ABC):
    """Abstract DPAPI: implemented by Lasagna, PA-NFS, and libpass.

    Layers stack by each accepting these calls from above and issuing
    them below; the ``obj`` argument is whatever handle type the layer
    uses (an inode, a descriptor, a wire file handle).
    """

    @abc.abstractmethod
    def pass_read(self, obj, offset: int = 0, length: int = -1):
        """Read data plus the exact identity (pnode, version) read."""

    @abc.abstractmethod
    def pass_write(self, obj, data: Optional[bytes], bundle: Bundle,
                   offset: int = 0, length: Optional[int] = None) -> int:
        """Write data (or provenance alone) together with its bundle."""

    @abc.abstractmethod
    def pass_freeze(self, obj) -> int:
        """Create a new version of ``obj`` (cycle breaking); returns it."""

    @abc.abstractmethod
    def pass_mkobj(self, volume_hint: Optional[str] = None):
        """Create an application-level provenanced object."""

    @abc.abstractmethod
    def pass_reviveobj(self, pnode: int, version: int):
        """Reattach to an object previously created by ``pass_mkobj``."""

    @abc.abstractmethod
    def pass_sync(self, obj) -> None:
        """Force the object's provenance to persistent storage."""
