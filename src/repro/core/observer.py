"""The observer: system-call events -> provenance records (section 5.3).

The observer receives events from the interceptor, constructs provenance
records, and passes them to the analyzer.  It is also the entry point
for provenance-aware applications: when an application discloses
provenance through the DPAPI, the observer converts the disclosed
records into kernel structures, adds the records the kernel itself must
contribute (e.g. the dependency between the writing application and the
written file), and forwards everything downstream.

The observer drives the *data* path too, so that data and provenance
move together (consistency, section 4): writes to a PASS volume go
through Lasagna's ``pass_write``, which enforces write-ahead provenance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.core.analyzer import Analyzer, ProtoRecord
from repro.core.distributor import Distributor
from repro.core.dpapi import PassObject
from repro.core.errors import StalePnodeVersion
from repro.core.pnode import ObjectRef, PnodeAllocator, TRANSIENT_VOLUME
from repro.core.records import Attr, ObjType
from repro.kernel.process import Pipe, Process
from repro.kernel.vfs import Inode

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class Observer:
    """Translates events into records and routes data through the DPAPI."""

    def __init__(self, kernel: "Kernel", analyzer: Analyzer,
                 distributor: Distributor, batching: bool = True):
        self.kernel = kernel
        self.analyzer = analyzer
        self.distributor = distributor
        #: Batched ingest: each event's proto-records travel downstream
        #: as one ``Analyzer.submit_batch`` call instead of one submit
        #: per record.  Off = the per-record legacy path (the benchmark
        #: baseline and the unbatched arm of the equivalence tests).
        self.batching = batching
        self._transient = PnodeAllocator(TRANSIENT_VOLUME)
        #: pnodes whose identity (NAME/TYPE) records were already emitted.
        self._identified: set[int] = set()
        #: Revivable pass_mkobj objects, by pnode.
        self._passobjs: dict[int, PassObject] = {}
        #: Last process to write each file, by pnode: a write by a
        #: *different* process starts a new version, so independent
        #: producing runs never merge their ancestry into one version.
        self._last_writer: dict[int, int] = {}
        # Statistics (all submissions funnel through _submit).
        self.records_emitted = 0
        self.disclosed_count = 0

    def bind_obs(self, obs) -> None:
        """Expose emission totals to the observability layer."""
        obs.add_collector("observer", self._obs_counters)

    def _obs_counters(self) -> dict:
        return {
            "records_emitted": self.records_emitted,
            "disclosed_records": self.disclosed_count,
            "objects_identified": len(self._identified),
            "transient_pnodes": self._transient.high_water - 1,
        }

    def _submit(self, proto: ProtoRecord) -> None:
        """Emit one proto-record downstream (the observer's choke point,
        so record emission is countable per layer)."""
        self.records_emitted += 1
        self.analyzer.submit(proto)

    def _flush_event(self, protos: list) -> None:
        """Emit one event's worth of proto-records downstream.

        With batching on, the whole event becomes one
        ``Analyzer.submit_batch`` call; otherwise each proto takes the
        per-record path.  Admission order is the list order either way.
        """
        if not protos:
            return
        self.records_emitted += len(protos)
        if self.batching:
            self.analyzer.submit_batch(protos)
        else:
            submit = self.analyzer.submit
            for proto in protos:
                submit(proto)

    def submit_protos(self, protos) -> None:
        """Public batch entry: emit caller-built proto-records as one
        event (the kernel's rename/link paths and provenance-aware
        layers use this instead of reaching into the analyzer)."""
        self._flush_event(list(protos))

    # -- pnode management -------------------------------------------------------

    def transient_pnode(self) -> int:
        """Allocate a pnode in the transient space."""
        return self._transient.allocate()

    def adopt(self, obj) -> None:
        """Assign a transient pnode to an object that lacks one."""
        if getattr(obj, "pnode", 0) == 0:
            obj.pnode = self.transient_pnode()
        self.analyzer.register(obj)

    # -- identity records ----------------------------------------------------------

    def identify_inode(self, inode: Inode, path: Optional[str] = None) -> None:
        """Emit NAME/TYPE/TIME for a file on first provenance contact."""
        protos: list = []
        self._identify_inode(inode, path, protos)
        self._flush_event(protos)

    def identify_named(self, inode: Inode, path: Optional[str],
                       name: str) -> None:
        """Identity plus a NAME refresh in one event batch.

        The rename and link syscalls bind a (possibly already
        identified) inode to a new path; first-contact identity and the
        new NAME must land in the same event so ancestry closure never
        sees a nameless subject.
        """
        protos: list = []
        self._identify_inode(inode, path, protos)
        protos.append(ProtoRecord(inode, Attr.NAME, name))
        self.submit_protos(protos)

    def _identify_inode(self, inode: Inode, path: Optional[str],
                        protos: list) -> None:
        """Collect a file's first-contact identity into the event batch."""
        self.adopt(inode)
        if inode.pnode in self._identified:
            return
        self._identified.add(inode.pnode)
        obj_type = ObjType.FILE if inode.volume.pass_capable else ObjType.NP_FILE
        if inode.is_dir:
            obj_type = ObjType.DIR
        protos.append(ProtoRecord(inode, Attr.TYPE, obj_type))
        if path:
            protos.append(ProtoRecord(inode, Attr.NAME, path))
        protos.append(ProtoRecord(inode, Attr.TIME, self.kernel.clock.now))

    def identify_process(self, proc: Process) -> None:
        """Emit TYPE/NAME/ARGV/ENV/PID for a process on first contact."""
        protos: list = []
        self._identify_process(proc, protos)
        self._flush_event(protos)

    def _identify_process(self, proc: Process, protos: list) -> None:
        """Collect a process's first-contact identity into the batch."""
        self.analyzer.register(proc)
        if proc.pnode in self._identified:
            return
        self._identified.add(proc.pnode)
        protos.append(ProtoRecord(proc, Attr.TYPE, ObjType.PROCESS))
        if proc.argv:
            protos.append(ProtoRecord(proc, Attr.NAME, proc.argv[0]))
            protos.append(ProtoRecord(proc, Attr.ARGV, "\0".join(proc.argv)))
        if proc.env:
            env = "\0".join(f"{key}={value}" for key, value in sorted(proc.env.items()))
            protos.append(ProtoRecord(proc, Attr.ENV, env))
        protos.append(ProtoRecord(proc, Attr.PID, proc.pid))
        protos.append(ProtoRecord(proc, Attr.TIME, self.kernel.clock.now))
        # Environment facts system-level provenance is valued for:
        # "the specific binaries, libraries, and kernel modules in use".
        protos.append(ProtoRecord(proc, Attr.KERNEL,
                                  self.kernel.version_string))

    def identify_pipe(self, pipe: Pipe) -> None:
        """Emit TYPE for a pipe on first contact."""
        protos: list = []
        self._identify_pipe(pipe, protos)
        self._flush_event(protos)

    def _identify_pipe(self, pipe: Pipe, protos: list) -> None:
        """Collect a pipe's first-contact identity into the batch."""
        self.analyzer.register(pipe)
        if pipe.pnode in self._identified:
            return
        self._identified.add(pipe.pnode)
        protos.append(ProtoRecord(pipe, Attr.TYPE, ObjType.PIPE))

    # -- system-call handlers (called by the interceptor) ---------------------------

    def on_execve(self, proc: Process, binary: Optional[Inode],
                  path: Optional[str]) -> None:
        """Process executed a binary: identity + EXEC ancestry edge."""
        protos: list = []
        self._identify_process(proc, protos)
        if binary is not None:
            self._identify_inode(binary, path, protos)
            protos.append(ProtoRecord(proc, Attr.EXEC, binary.ref()))
        self._flush_event(protos)

    def on_fork(self, child: Process, parent: Optional[Process]) -> None:
        """New process: identity + FORKPARENT ancestry edge."""
        protos: list = []
        self._identify_process(child, protos)
        if parent is not None:
            self._identify_process(parent, protos)
            protos.append(ProtoRecord(child, Attr.FORKPARENT, parent.ref()))
        self._flush_event(protos)

    def on_exit(self, proc: Process) -> None:
        """Process exit.  Cached provenance stays in the distributor: a
        descendant may yet become persistent (e.g. a pipe reader)."""
        # Intentionally nothing to record; the hook exists for symmetry
        # with the interceptor's syscall table and for subclasses.

    def on_read(self, proc: Process, inode: Inode, path: Optional[str],
                offset: int, length: int) -> bytes:
        """pass_read semantics: return data plus record P -> file@version."""
        protos: list = []
        self._identify_inode(inode, path, protos)
        self._identify_process(proc, protos)
        data = self._read_data(inode, offset, length)
        protos.append(ProtoRecord(proc, Attr.INPUT, inode.ref()))
        self._flush_event(protos)
        return data

    def on_write(self, proc: Process, inode: Inode, path: Optional[str],
                 offset: int, data: Optional[bytes],
                 length: Optional[int]) -> int:
        """Record file -> P, then write data with its provenance (WAP)."""
        protos: list = []
        self._identify_inode(inode, path, protos)
        self._identify_process(proc, protos)
        if self._writer_changed(inode, proc.pnode):
            # The freeze record must land between the identity records
            # and the INPUT edge, exactly as on the per-record path: the
            # identity batch goes first, then the freeze, then the edge.
            self._flush_event(protos)
            protos = []
            self.analyzer.freeze(inode)
        self._last_writer[inode.pnode] = proc.pnode
        protos.append(ProtoRecord(inode, Attr.INPUT, proc.ref()))
        self._flush_event(protos)
        return self._write_data(inode, offset, data, length)

    def _writer_changed(self, inode: Inode, writer_pnode: int) -> bool:
        """True when a different process starts writing this file."""
        previous = self._last_writer.get(inode.pnode)
        return previous is not None and previous != writer_pnode

    def _note_writer(self, inode: Inode, writer_pnode: int) -> None:
        """Freeze a file that a new process starts writing."""
        if self._writer_changed(inode, writer_pnode):
            self.analyzer.freeze(inode)
        self._last_writer[inode.pnode] = writer_pnode

    def on_mmap(self, proc: Process, inode: Inode, path: Optional[str],
                readable: bool, writable: bool) -> None:
        """mmap creates dependencies in whichever directions it maps."""
        protos: list = []
        self._identify_inode(inode, path, protos)
        self._identify_process(proc, protos)
        if readable:
            protos.append(ProtoRecord(proc, Attr.INPUT, inode.ref()))
        if writable:
            protos.append(ProtoRecord(inode, Attr.INPUT, proc.ref()))
        self._flush_event(protos)

    def on_pipe_create(self, proc: Process, pipe: Pipe) -> None:
        """New pipe: assign identity."""
        self.adopt(pipe)
        self.identify_pipe(pipe)

    def on_pipe_write(self, proc: Process, pipe: Pipe) -> None:
        """pipe depends on the writing process."""
        protos: list = []
        self._identify_pipe(pipe, protos)
        self._identify_process(proc, protos)
        protos.append(ProtoRecord(pipe, Attr.INPUT, proc.ref()))
        self._flush_event(protos)

    def on_pipe_read(self, proc: Process, pipe: Pipe) -> None:
        """the reading process depends on the pipe."""
        protos: list = []
        self._identify_pipe(pipe, protos)
        self._identify_process(proc, protos)
        protos.append(ProtoRecord(proc, Attr.INPUT, pipe.ref()))
        self._flush_event(protos)

    def on_drop_inode(self, inode: Inode) -> None:
        """Last unlink: transient (non-PASS) file provenance with no
        persistent descendants is legitimately discarded."""
        if not inode.volume.pass_capable and inode.pnode:
            self.distributor.discard(inode.pnode)
            self.analyzer.forget(inode.pnode)

    # -- disclosed provenance (DPAPI entry points, via libpass) ---------------------

    def disclosed_records(self, proc: Optional[Process],
                          protos: Iterable[ProtoRecord]) -> None:
        """Accept application-disclosed records (one event batch: bulk
        disclosure is the DPAPI's natural big-batch entry point)."""
        event: list = []
        if proc is not None:
            self._identify_process(proc, event)
        before = len(event)
        event.extend(protos)
        self.disclosed_count += len(event) - before
        self._flush_event(event)

    def disclosed_write(self, proc: Optional[Process], inode: Inode,
                        path: Optional[str], offset: int,
                        data: Optional[bytes], length: Optional[int],
                        protos: Iterable[ProtoRecord]) -> int:
        """DPAPI pass_write from an application: disclosed records plus
        the kernel's own application->file dependency, plus the data."""
        event: list = []
        self._identify_inode(inode, path, event)
        if proc is not None and (data is not None or length is not None):
            if self._writer_changed(inode, proc.pnode):
                self._flush_event(event)
                event = []
                self.analyzer.freeze(inode)
            self._last_writer[inode.pnode] = proc.pnode
        before = len(event)
        event.extend(protos)
        self.disclosed_count += len(event) - before
        if proc is not None:
            self._identify_process(proc, event)
            event.append(ProtoRecord(inode, Attr.INPUT, proc.ref()))
        self._flush_event(event)
        if data is None and length is None:
            return 0
        return self._write_data(inode, offset, data, length)

    def mkobj(self, volume_hint: Optional[str] = None) -> PassObject:
        """DPAPI pass_mkobj: a provenanced object above the file system."""
        obj = PassObject(self.transient_pnode(), volume_hint)
        self.analyzer.register(obj)
        self._passobjs[obj.pnode] = obj
        if volume_hint is not None:
            self.distributor.set_hint(obj.pnode, volume_hint)
        return obj

    def adopt_passobj(self, obj: PassObject) -> PassObject:
        """Track an externally minted DPAPI object (e.g. a pnode
        allocated at a PA-NFS server) exactly as if ``mkobj`` had
        created it here: registered with the analyzer and revivable."""
        self.analyzer.register(obj)
        self._passobjs[obj.pnode] = obj
        return obj

    def reviveobj(self, pnode: int, version: int) -> PassObject:
        """DPAPI pass_reviveobj: reattach to an earlier pass_mkobj object."""
        obj = self._passobjs.get(pnode)
        if obj is None:
            raise StalePnodeVersion(
                f"pnode {pnode} was never created by pass_mkobj here"
            )
        if version > obj.version:
            raise StalePnodeVersion(
                f"pnode {pnode} has no version {version} (latest {obj.version})"
            )
        return obj

    def sync(self, pnode: int, volume_hint: Optional[str] = None) -> int:
        """DPAPI pass_sync: force cached provenance to a volume."""
        return self.distributor.sync(pnode, volume_hint)

    def freeze(self, obj) -> int:
        """DPAPI pass_freeze: explicit new version."""
        return self.analyzer.freeze(obj)

    # -- data path ----------------------------------------------------------------

    def _read_data(self, inode: Inode, offset: int, length: int) -> bytes:
        volume = inode.volume
        top = volume.fs_top
        if top is volume:
            return volume.read_bytes(inode, offset, length)
        return top.read_bytes(inode, offset, length)

    def _write_data(self, inode: Inode, offset: int,
                    data: Optional[bytes], length: Optional[int]) -> int:
        volume = inode.volume
        top = volume.fs_top
        if top is volume:
            return volume.write_bytes(inode, offset, data, length)
        return top.write_bytes(inode, offset, data, length)
