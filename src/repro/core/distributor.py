"""The distributor: provenance for objects that are not PASS files.

Processes, pipes, ``pass_mkobj`` objects, and files on non-PASS volumes
are provenanced but not persistent on any PASS-enabled volume.  The
distributor caches their records in memory and materializes them on a
PASS volume only when:

* they become part of the ancestry of a persistent object there (the
  flush happens *before* the descendant's record, preserving the
  write-ahead-provenance invariant that no record ever references an
  ancestor whose provenance is not already on disk), or
* the application forces it with ``pass_sync``.

Records whose subjects never reach either state are discarded when the
object dies -- correct behaviour for purely transient objects such as
processes with no surviving descendants (section 5.5).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.errors import UnknownPnode, VolumeError
from repro.core.pnode import TRANSIENT_VOLUME, ObjectRef, volume_of
from repro.core.records import Bundle, ProvenanceRecord, RecordBatch

#: A sink accepting (volume_name, Bundle) -- Lasagna's provenance-only
#: write path, bound in by the kernel assembly.
FlushSink = Callable[[str, Bundle], None]


class Distributor:
    """Routes finalized records to a PASS volume log or an in-memory cache."""

    def __init__(self, flush_sink: FlushSink,
                 volume_name_of: Callable[[int], str],
                 default_volume: Optional[str] = None,
                 faults=None):
        self._flush_sink = flush_sink
        self._volume_name_of = volume_name_of
        self.default_volume = default_volume
        #: Fault injector (repro.faults); None keeps flush() bare.
        self._faults = faults
        #: Cached records of not-yet-persistent objects, by pnode.
        self._cache: dict[int, list[ProvenanceRecord]] = {}
        #: Volume each flushed transient pnode was assigned to.
        self._assigned: dict[int, str] = {}
        #: Volume hints from pass_mkobj.
        self._hints: dict[int, str] = {}
        #: While flush_batch runs, volume-bound records accumulate here
        #: (per-volume, in admission order) instead of hitting the sink
        #: one Bundle at a time; None outside a batch.
        self._pending: Optional[dict[str, list[ProvenanceRecord]]] = None
        # Statistics.
        self.records_cached = 0
        self.records_flushed = 0
        self.records_discarded = 0
        self.flush_calls = 0
        self.batches_dispatched = 0

    def bind_obs(self, obs) -> None:
        """Expose cache/flush totals to the observability layer
        (snapshot-time collector; dispatch() itself is untouched)."""
        obs.add_collector("distributor", self._obs_counters)

    def _obs_counters(self) -> dict:
        return {
            "records_cached": self.records_cached,
            "records_flushed": self.records_flushed,
            "records_discarded": self.records_discarded,
            "flush_calls": self.flush_calls,
            "batches_dispatched": self.batches_dispatched,
            "pending_pnodes": len(self._cache),
            "assigned_pnodes": len(self._assigned),
        }

    # -- configuration ----------------------------------------------------------

    def set_hint(self, pnode: int, volume_name: str) -> None:
        """Remember the volume a pass_mkobj caller asked for."""
        self._hints[pnode] = volume_name

    # -- record routing -----------------------------------------------------------

    def dispatch(self, record: ProvenanceRecord) -> None:
        """Accept one finalized record from the analyzer."""
        pnode = record.subject.pnode
        if self._is_persistent(pnode):
            volume = self._volume_name_of(volume_of(pnode))
            self._flush_ancestors(record, volume)
            self._flush_sink(volume, Bundle([record]))
            self.records_flushed += 1
        elif pnode in self._assigned:
            # Already materialized somewhere: follow-on records go there.
            volume = self._assigned[pnode]
            self._flush_ancestors(record, volume)
            self._flush_sink(volume, Bundle([record]))
            self.records_flushed += 1
        else:
            self._cache.setdefault(pnode, []).append(record)
            self.records_cached += 1

    def flush_batch(self, batch: RecordBatch) -> None:
        """Accept a batch of finalized records from the analyzer.

        Routing is record-for-record identical to :meth:`dispatch`
        (persistent / already-assigned records bind to a volume,
        ancestors materialize first, everything else is cached), but
        volume-bound records accumulate in per-volume buffers and reach
        the sink as one :class:`RecordBatch` per volume instead of one
        Bundle per record.  Per-volume record order -- the order the WAP
        log and the database see -- is exactly the per-record order.
        """
        pending: dict[str, list[ProvenanceRecord]] = {}
        self._pending = pending
        flushed = cached = 0
        try:
            cache = self._cache
            assigned = self._assigned
            volume_name_of = self._volume_name_of
            # Batches arrive as runs of records about the same subject;
            # the routing decision (and destination list) is re-derived
            # only when the subject pnode changes.  A pnode's routing
            # can only flip from cached to assigned when some *other*
            # subject's record references it, which always breaks the
            # run first, so the cached decision never goes stale.
            last_pnode = None
            volume = None
            bucket: Optional[list] = None
            routed = False
            for record in batch:
                pnode = record.subject.pnode
                if pnode != last_pnode:
                    last_pnode = pnode
                    volume_id = volume_of(pnode)
                    if volume_id != TRANSIENT_VOLUME:
                        volume = volume_name_of(volume_id)
                        routed = True
                    elif pnode in assigned:
                        volume = assigned[pnode]
                        routed = True
                    else:
                        routed = False
                        bucket = cache.get(pnode)
                        if bucket is None:
                            bucket = cache[pnode] = []
                    if routed:
                        bucket = pending.get(volume)
                        if bucket is None:
                            bucket = pending[volume] = []
                if routed:
                    value = record.value
                    if isinstance(value, ObjectRef):
                        # Ancestors first: write-ahead provenance across
                        # objects.  flush() appends into ``pending`` (the
                        # same per-volume list ``bucket`` refers to), so
                        # ancestor records precede this one.
                        self.flush(value.pnode, volume)
                    bucket.append(record)
                    flushed += 1
                else:
                    bucket.append(record)
                    cached += 1
        finally:
            self._pending = None
            self.records_flushed += flushed
            self.records_cached += cached
        self.batches_dispatched += 1
        for volume, records in pending.items():
            self._flush_sink(volume, RecordBatch(records))

    def _flush_ancestors(self, record: ProvenanceRecord, volume: str) -> None:
        """Materialize cached provenance of any ancestor the record names."""
        if isinstance(record.value, ObjectRef):
            self.flush(record.value.pnode, volume)

    @staticmethod
    def _is_persistent(pnode: int) -> bool:
        return volume_of(pnode) != TRANSIENT_VOLUME

    # -- flushing ---------------------------------------------------------------

    def flush(self, pnode: int, volume: Optional[str] = None) -> int:
        """Materialize the cached provenance of one object (recursively
        including its cached ancestors) onto ``volume``.

        Returns the number of records written.  A no-op for objects with
        no cached records (persistent objects, already-flushed objects).
        """
        if pnode not in self._cache:
            return 0
        if self._faults is not None:
            # Cached transient records are about to become durable.
            self._faults.fire("distributor.flush", pnode=pnode,
                              records=len(self._cache[pnode]))
        self.flush_calls += 1
        volume = (volume or self._hints.get(pnode)
                  or self._assigned.get(pnode) or self.default_volume)
        if volume is None:
            raise VolumeError(
                f"no PASS volume available to hold provenance of pnode {pnode}"
            )
        records = self._cache.pop(pnode)
        self._assigned[pnode] = volume
        # Ancestors first: write-ahead provenance across objects.
        for record in records:
            if isinstance(record.value, ObjectRef):
                self.flush(record.value.pnode, volume)
        pending = self._pending
        if pending is not None:
            # Inside flush_batch: join the per-volume batch in order.
            pending.setdefault(volume, []).extend(records)
        else:
            self._flush_sink(volume, Bundle(records))
        self.records_flushed += len(records)
        return len(records)

    def sync(self, pnode: int, volume: Optional[str] = None) -> int:
        """``pass_sync``: force an object's provenance to disk."""
        if pnode not in self._cache and pnode not in self._assigned:
            raise UnknownPnode(f"pass_sync: nothing known about pnode {pnode}")
        return self.flush(pnode, volume)

    def discard(self, pnode: int) -> int:
        """Drop cached records of a dead object with no persistent ties."""
        records = self._cache.pop(pnode, [])
        self.records_discarded += len(records)
        return len(records)

    # -- introspection ---------------------------------------------------------

    def cached_records(self, pnode: int) -> list[ProvenanceRecord]:
        """Copy of the records currently cached for an object."""
        return list(self._cache.get(pnode, ()))

    def cached_pnodes(self) -> list[int]:
        """Pnodes with cached (unmaterialized) provenance."""
        return list(self._cache)

    def assigned_volume(self, pnode: int) -> Optional[str]:
        """Volume a transient object's provenance was materialized on."""
        return self._assigned.get(pnode)
