"""The analyzer: duplicate elimination and cycle avoidance (section 5.4).

The analyzer sits between the observer and the distributor.  It receives
*proto-records* -- records whose subject is a live object rather than a
frozen (pnode, version) pair -- finalizes their subject version, drops
duplicates, and guarantees that the resulting provenance graph over
(pnode, version) nodes is acyclic.

Cycle avoidance follows the algorithm of Muniswamy-Reddy & Holland
(FAST '09) that PASSv2 adopted after PASSv1's global cycle *detection*
proved intractable.  The local rule that guarantees acyclicity is
immutability of *observed* versions: the moment any record makes some
object depend on version (p, v), that version's own ancestry is frozen
forever.  When a new dependency must be recorded *from* an object whose
current version has already been observed (or the edge is a self-edge),
the analyzer first freezes the object -- creating a new version that
depends on the old one -- and records the edge against the new version.

Why this is sound: a cycle would need some version to gain an outgoing
edge *after* gaining an incoming one; the observed-version rule makes
exactly that impossible.  It is conservative -- it may create versions a
global analysis would avoid -- but it needs no global state, which is
what lets the same analyzer run unmodified on NFS clients and servers.

Duplicate elimination: programs do I/O in small blocks, so a single
logical read/write produces many identical records; a record whose
(subject, attribute, value) triple was already recorded for the same
subject version is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord, Value


@dataclass
class ProtoRecord:
    """A record-in-flight whose subject is still a live object.

    ``subject`` is any object with ``pnode``/``version`` attributes and a
    ``ref()`` method (inode, process, pipe, :class:`PassObject`).  The
    analyzer pins the subject version when it admits the record.
    """

    subject: object
    attr: str
    value: Value


#: Object the analyzer can freeze: has pnode, version, ref().
Freezable = object


class Analyzer:
    """Stream processor: proto-records in, finalized records out.

    ``emit`` receives each admitted :class:`ProvenanceRecord` in order;
    the distributor is the normal consumer.  ``on_freeze`` (optional) is
    told about analyzer-initiated freezes so storage layers can version
    data structures.
    """

    def __init__(self, emit: Callable[[ProvenanceRecord], None],
                 clock=None, record_cost: float = 0.0):
        self._emit = emit
        self._clock = clock
        self._record_cost = record_cost
        #: Ancestors (ObjectRefs) of each pnode's *current* version.
        self._ancestors: dict[int, set[ObjectRef]] = {}
        #: Versions some object depends on: immutable from then on.
        self._observed: set[ObjectRef] = set()
        #: (attr, value-key) pairs already recorded, per (pnode, version).
        self._seen: dict[ObjectRef, set[tuple]] = {}
        #: pnode -> live object, so freezes can bump versions.
        self._registry: dict[int, Freezable] = {}
        self.on_freeze: Optional[Callable[[Freezable, int], None]] = None
        #: Ablation switch: disable duplicate elimination (the paper's
        #: motivation for the analyzer -- per-block I/O floods the log).
        self.dedup_enabled = True
        # Statistics.
        self.records_in = 0
        self.records_out = 0
        self.duplicates_dropped = 0
        self.freezes = 0
        self.cycle_breaks = 0

    def bind_obs(self, obs) -> None:
        """Expose this analyzer's totals to the observability layer.

        Registered as a snapshot-time collector so the per-record hot
        path (submit/_admit) carries no instrumentation calls at all.
        """
        obs.add_collector("analyzer", self._obs_counters)

    def _obs_counters(self) -> dict:
        return {
            "records_in": self.records_in,
            "records_out": self.records_out,
            "duplicates_dropped": self.duplicates_dropped,
            "freezes": self.freezes,
            "cycle_breaks": self.cycle_breaks,
            "observed_versions": len(self._observed),
            "registered_objects": len(self._registry),
        }

    # -- object registry ------------------------------------------------------

    def register(self, obj: Freezable) -> None:
        """Make an object freezable / resolvable by pnode."""
        self._registry[obj.pnode] = obj

    def lookup(self, pnode: int) -> Optional[Freezable]:
        """Find the live object for a pnode, if registered."""
        return self._registry.get(pnode)

    def forget(self, pnode: int) -> None:
        """Drop a dead object from the registry (keeps ancestry sets)."""
        self._registry.pop(pnode, None)

    # -- record admission -----------------------------------------------------

    def submit(self, proto: Union[ProtoRecord, ProvenanceRecord]) -> None:
        """Admit one record: version-pin, cycle-avoid, dedup, emit."""
        self.records_in += 1
        if self._clock is not None and self._record_cost:
            self._clock.advance(self._record_cost, "provenance_cpu")

        if isinstance(proto, ProvenanceRecord):
            # Already finalized (e.g. arrived over the NFS wire): dedup
            # and ancestry-track, but do not re-version.
            self._admit(proto.subject, proto.attr, proto.value)
            return

        subject = proto.subject
        value = proto.value
        if isinstance(value, ObjectRef) and proto.attr in Attr.ANCESTRY_ATTRS:
            self._avoid_cycle(subject, value)
        self._admit(subject.ref(), proto.attr, value)

    def submit_many(self, protos) -> None:
        """Admit a sequence of records in order."""
        for proto in protos:
            self.submit(proto)

    def _admit(self, subject_ref: ObjectRef, attr: str, value: Value) -> None:
        record = ProvenanceRecord(subject_ref, attr, value)
        seen = self._seen.setdefault(subject_ref, set())
        dedup_key = (attr, record.key()[2])
        if dedup_key in seen:
            if self.dedup_enabled:
                self.duplicates_dropped += 1
                return
        else:
            seen.add(dedup_key)
        if record.is_ancestry:
            self._note_edge(subject_ref, value)
        self.records_out += 1
        self._emit(record)

    # -- cycle avoidance --------------------------------------------------------

    def _avoid_cycle(self, subject: Freezable, value: ObjectRef) -> None:
        """Freeze ``subject`` if recording ``subject -> value`` could cycle."""
        current = subject.ref()
        if value.pnode == current.pnode:
            # Self-dependency: reading your own output.  A reference to an
            # *older* version of yourself is fine (that is what freezing
            # produces); the current version would be a 1-cycle.
            if value.version >= current.version:
                self.cycle_breaks += 1
                self.freeze(subject)
            return
        # Observed versions are immutable: if anything already depends on
        # the subject's current version, new ancestry starts a new one.
        if current in self._observed:
            self.cycle_breaks += 1
            self.freeze(subject)

    def freeze(self, subject: Freezable) -> int:
        """Create a new version of ``subject``; returns the new version.

        The new version depends on the old one (PREV_VERSION edge), its
        ancestor set inherits the old version's (contents persist across
        versions), and its duplicate-elimination state starts fresh.
        """
        old_ref = subject.ref()
        subject.version += 1
        new_ref = subject.ref()
        self.freezes += 1
        inherited = set(self._ancestors.get(subject.pnode, ()))
        inherited.add(old_ref)
        self._ancestors[subject.pnode] = inherited
        self._seen.setdefault(new_ref, set())
        if self.on_freeze is not None:
            self.on_freeze(subject, subject.version)
        self._admit(new_ref, Attr.PREV_VERSION, old_ref)
        return subject.version

    def _note_edge(self, subject_ref: ObjectRef, value: ObjectRef) -> None:
        """Fold ``value`` and its known ancestry into the subject's set,
        and pin ``value`` as observed (immutable from now on)."""
        anc = self._ancestors.setdefault(subject_ref.pnode, set())
        anc.add(value)
        anc.update(self._ancestors.get(value.pnode, ()))
        self._observed.add(value)

    # -- introspection ------------------------------------------------------------

    def ancestors_of(self, pnode: int) -> frozenset[ObjectRef]:
        """Known ancestry of the object's current version (testing aid)."""
        return frozenset(self._ancestors.get(pnode, ()))
