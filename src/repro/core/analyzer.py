"""The analyzer: duplicate elimination and cycle avoidance (section 5.4).

The analyzer sits between the observer and the distributor.  It receives
*proto-records* -- records whose subject is a live object rather than a
frozen (pnode, version) pair -- finalizes their subject version, drops
duplicates, and guarantees that the resulting provenance graph over
(pnode, version) nodes is acyclic.

Cycle avoidance follows the algorithm of Muniswamy-Reddy & Holland
(FAST '09) that PASSv2 adopted after PASSv1's global cycle *detection*
proved intractable.  The local rule that guarantees acyclicity is
immutability of *observed* versions: the moment any record makes some
object depend on version (p, v), that version's own ancestry is frozen
forever.  When a new dependency must be recorded *from* an object whose
current version has already been observed (or the edge is a self-edge),
the analyzer first freezes the object -- creating a new version that
depends on the old one -- and records the edge against the new version.

Why this is sound: a cycle would need some version to gain an outgoing
edge *after* gaining an incoming one; the observed-version rule makes
exactly that impossible.  It is conservative -- it may create versions a
global analysis would avoid -- but it needs no global state, which is
what lets the same analyzer run unmodified on NFS clients and servers.

Duplicate elimination: programs do I/O in small blocks, so a single
logical read/write produces many identical records; a record whose
(subject, attribute, value) triple was already recorded for the same
subject version is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from collections import OrderedDict

from repro.core.errors import InvalidRecord
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord, RecordBatch, Value

#: Plain value classes a record may carry (the batch path validates with
#: one frozenset membership test instead of three isinstance calls).
_PLAIN_VALUE_TYPES = frozenset((int, float, str, bytes, bool))


@dataclass
class ProtoRecord:
    """A record-in-flight whose subject is still a live object.

    ``subject`` is any object with ``pnode``/``version`` attributes and a
    ``ref()`` method (inode, process, pipe, :class:`PassObject`).  The
    analyzer pins the subject version when it admits the record.
    """

    subject: object
    attr: str
    value: Value


#: Object the analyzer can freeze: has pnode, version, ref().
Freezable = object


class Analyzer:
    """Stream processor: proto-records in, finalized records out.

    ``emit`` receives each admitted :class:`ProvenanceRecord` in order;
    the distributor is the normal consumer.  ``on_freeze`` (optional) is
    told about analyzer-initiated freezes so storage layers can version
    data structures.
    """

    #: Capacity of the hot-triple duplicate cache (see submit_batch).
    HOT_TRIPLES = 4096

    def __init__(self, emit: Callable[[ProvenanceRecord], None],
                 clock=None, record_cost: float = 0.0,
                 emit_batch: Optional[Callable[[RecordBatch], None]] = None):
        self._emit = emit
        #: Batch sink (distributor.flush_batch); when None, batches
        #: degrade to per-record emits through ``emit``.
        self._emit_batch = emit_batch
        self._clock = clock
        self._record_cost = record_cost
        #: While submit_batch runs, admitted records collect here (so
        #: freeze-emitted PREV_VERSION records keep their position in
        #: the batch) instead of going straight to ``emit``.
        self._batch_out: Optional[list] = None
        #: LRU of (pnode, version, attr, value-key) quadruples already
        #: processed: block-sized I/O re-submits the same few triples
        #: hundreds of times, and a hit here classifies the record as a
        #: duplicate without constructing anything.
        self._hot: OrderedDict[tuple, None] = OrderedDict()
        #: Ancestors (ObjectRefs) of each pnode's *current* version.
        self._ancestors: dict[int, set[ObjectRef]] = {}
        #: Versions some object depends on: immutable from then on.
        self._observed: set[ObjectRef] = set()
        #: (attr, value-key) pairs already recorded, per (pnode, version).
        self._seen: dict[ObjectRef, set[tuple]] = {}
        #: pnode -> live object, so freezes can bump versions.
        self._registry: dict[int, Freezable] = {}
        self.on_freeze: Optional[Callable[[Freezable, int], None]] = None
        #: Ablation switch: disable duplicate elimination (the paper's
        #: motivation for the analyzer -- per-block I/O floods the log).
        self.dedup_enabled = True
        # Statistics.
        self.records_in = 0
        self.records_out = 0
        self.duplicates_dropped = 0
        self.freezes = 0
        self.cycle_breaks = 0

    def bind_obs(self, obs) -> None:
        """Expose this analyzer's totals to the observability layer.

        Registered as a snapshot-time collector so the per-record hot
        path (submit/_admit) carries no instrumentation calls at all.
        """
        obs.add_collector("analyzer", self._obs_counters)

    def _obs_counters(self) -> dict:
        return {
            "records_in": self.records_in,
            "records_out": self.records_out,
            "duplicates_dropped": self.duplicates_dropped,
            "freezes": self.freezes,
            "cycle_breaks": self.cycle_breaks,
            "observed_versions": len(self._observed),
            "registered_objects": len(self._registry),
        }

    # -- object registry ------------------------------------------------------

    def register(self, obj: Freezable) -> None:
        """Make an object freezable / resolvable by pnode."""
        self._registry[obj.pnode] = obj

    def lookup(self, pnode: int) -> Optional[Freezable]:
        """Find the live object for a pnode, if registered."""
        return self._registry.get(pnode)

    def forget(self, pnode: int) -> None:
        """Drop a dead object from the registry (keeps ancestry sets)."""
        self._registry.pop(pnode, None)

    # -- record admission -----------------------------------------------------

    def submit(self, proto: Union[ProtoRecord, ProvenanceRecord]) -> None:
        """Admit one record: version-pin, cycle-avoid, dedup, emit."""
        self.records_in += 1
        if self._clock is not None and self._record_cost:
            self._clock.advance(self._record_cost, "provenance_cpu")

        if isinstance(proto, ProvenanceRecord):
            # Already finalized (e.g. arrived over the NFS wire): dedup
            # and ancestry-track, but do not re-version.
            self._admit(proto.subject, proto.attr, proto.value)
            return

        subject = proto.subject
        value = proto.value
        if isinstance(value, ObjectRef) and proto.attr in Attr.ANCESTRY_ATTRS:
            self._avoid_cycle(subject, value)
        self._admit(subject.ref(), proto.attr, value)

    def submit_many(self, protos) -> None:
        """Admit a sequence of records in order."""
        for proto in protos:
            self.submit(proto)

    def submit_batch(self, protos) -> int:
        """Admit a sequence in one vectorized pass; returns emitted count.

        Semantically identical to calling :meth:`submit` per item (the
        batched-vs-unbatched property test holds the two paths to the
        same database contents), but the per-record constants are
        amortized:

        * one clock advance for the whole batch;
        * duplicate elimination runs *before* record construction --
          one ``_seen``-set membership test per proto, with subject refs
          resolved once per run of protos about the same object;
        * a capped LRU of hot (subject, attr, value-key) triples
          short-circuits the duplicate storms block-sized I/O produces;
          it is consulted (and fed) only at run boundaries -- inside a
          run the ``_seen`` set is already at hand, so LRU maintenance
          there would be pure overhead;
        * field validation happens here with per-class tests, so records
          are minted inline (the loop-local form of
          :func:`~repro.core.records.make_record`) instead of through
          the frozen-dataclass ``__init__``;
        * admitted records leave as one :class:`RecordBatch` through
          ``emit_batch`` (freeze-emitted PREV_VERSION records are
          spliced into the batch at their admission position, so record
          order matches the per-record path exactly).
        """
        if not isinstance(protos, (list, tuple)):
            protos = list(protos)
        count = len(protos)
        self.records_in += count
        if self._clock is not None and self._record_cost:
            self._clock.advance(self._record_cost * count,
                                "provenance_cpu")
        out: list[ProvenanceRecord] = []
        emitted = dropped = 0
        self._batch_out = out
        try:
            seen_map = self._seen
            hot = self._hot
            hot_cap = self.HOT_TRIPLES
            dedup = self.dedup_enabled
            ancestry = Attr.ANCESTRY_ATTRS
            plain_types = _PLAIN_VALUE_TYPES
            out_append = out.append
            new_record = ProvenanceRecord.__new__
            record_cls = ProvenanceRecord
            last_subject = last_ref = last_seen = None
            for proto in protos:
                if proto.__class__ is not ProtoRecord and isinstance(
                        proto, ProvenanceRecord):
                    # Already finalized (e.g. the NFS wire): the legacy
                    # admission path, collected via _batch_out.
                    self._admit(proto.subject, proto.attr, proto.value)
                    continue
                subject = proto.subject
                attr = proto.attr
                value = proto.value
                cls = value.__class__
                if cls is ObjectRef or isinstance(value, ObjectRef):
                    if attr in ancestry:
                        self._avoid_cycle(subject, value)
                        # A freeze bumps the subject's version; drop the
                        # run cache so the ref is re-resolved.
                        last_subject = None
                    is_ref = True
                    vkey = ("ref", value.pnode, value.version)
                else:
                    if cls not in plain_types and not isinstance(
                            value, (int, float, str, bytes, bool)):
                        raise InvalidRecord(
                            f"unsupported value type: {cls.__name__}")
                    is_ref = False
                    vkey = (cls.__name__, value)
                if not attr or (attr.__class__ is not str
                                and not isinstance(attr, str)):
                    raise InvalidRecord(
                        f"attribute must be a non-empty string: {attr!r}")
                if subject is last_subject:
                    ref = last_ref
                    seen = last_seen
                    hkey = None
                else:
                    if dedup:
                        hkey = (subject.pnode, subject.version, attr, vkey)
                        if hkey in hot:
                            hot.move_to_end(hkey)
                            dropped += 1
                            continue
                    else:
                        hkey = None
                    ref = subject.ref()
                    if not isinstance(ref, ObjectRef):
                        raise InvalidRecord(
                            f"subject must be an ObjectRef: {ref!r}")
                    seen = seen_map.get(ref)
                    if seen is None:
                        seen = set()
                        seen_map[ref] = seen
                    last_subject, last_ref, last_seen = subject, ref, seen
                if hkey is not None:
                    hot[hkey] = None
                    if len(hot) > hot_cap:
                        hot.popitem(last=False)
                dkey = (attr, vkey)
                if dkey in seen:
                    if dedup:
                        dropped += 1
                        continue
                else:
                    seen.add(dkey)
                record = new_record(record_cls)
                fields = record.__dict__
                fields["subject"] = ref
                fields["attr"] = attr
                fields["value"] = value
                if is_ref and attr in ancestry:
                    self._note_edge(ref, value)
                emitted += 1
                out_append(record)
        finally:
            self._batch_out = None
            self.records_out += emitted
            self.duplicates_dropped += dropped
        if out:
            if self._emit_batch is not None:
                self._emit_batch(RecordBatch(out))
            else:
                emit = self._emit
                for record in out:
                    emit(record)
        return len(out)

    def _admit(self, subject_ref: ObjectRef, attr: str, value: Value) -> None:
        record = ProvenanceRecord(subject_ref, attr, value)
        seen = self._seen.setdefault(subject_ref, set())
        dedup_key = (attr, record.key()[2])
        if dedup_key in seen:
            if self.dedup_enabled:
                self.duplicates_dropped += 1
                return
        else:
            seen.add(dedup_key)
        if record.is_ancestry:
            self._note_edge(subject_ref, value)
        self.records_out += 1
        batch_out = self._batch_out
        if batch_out is not None:
            batch_out.append(record)
        else:
            self._emit(record)

    # -- cycle avoidance --------------------------------------------------------

    def _avoid_cycle(self, subject: Freezable, value: ObjectRef) -> None:
        """Freeze ``subject`` if recording ``subject -> value`` could cycle."""
        current = subject.ref()
        if value.pnode == current.pnode:
            # Self-dependency: reading your own output.  A reference to an
            # *older* version of yourself is fine (that is what freezing
            # produces); the current version would be a 1-cycle.
            if value.version >= current.version:
                self.cycle_breaks += 1
                self.freeze(subject)
            return
        # Observed versions are immutable: if anything already depends on
        # the subject's current version, new ancestry starts a new one.
        if current in self._observed:
            self.cycle_breaks += 1
            self.freeze(subject)

    def freeze(self, subject: Freezable) -> int:
        """Create a new version of ``subject``; returns the new version.

        The new version depends on the old one (PREV_VERSION edge), its
        ancestor set inherits the old version's (contents persist across
        versions), and its duplicate-elimination state starts fresh.
        """
        old_ref = subject.ref()
        subject.version += 1
        new_ref = subject.ref()
        self.freezes += 1
        inherited = set(self._ancestors.get(subject.pnode, ()))
        inherited.add(old_ref)
        self._ancestors[subject.pnode] = inherited
        self._seen.setdefault(new_ref, set())
        if self.on_freeze is not None:
            self.on_freeze(subject, subject.version)
        self._admit(new_ref, Attr.PREV_VERSION, old_ref)
        return subject.version

    def _note_edge(self, subject_ref: ObjectRef, value: ObjectRef) -> None:
        """Fold ``value`` and its known ancestry into the subject's set,
        and pin ``value`` as observed (immutable from now on)."""
        anc = self._ancestors.setdefault(subject_ref.pnode, set())
        anc.add(value)
        anc.update(self._ancestors.get(value.pnode, ()))
        self._observed.add(value)

    # -- introspection ------------------------------------------------------------

    def ancestors_of(self, pnode: int) -> frozenset[ObjectRef]:
        """Known ancestry of the object's current version (testing aid)."""
        return frozenset(self._ancestors.get(pnode, ()))
