"""PASSv2 core: the provenance pipeline.

Data and provenance flow together through these components (paper
Figure 2)::

    application --(libpass / DPAPI)--> observer --> analyzer
        --> distributor --> Lasagna (log) --> Waldo --> database

* :mod:`repro.core.records`     -- records, attributes, bundles
* :mod:`repro.core.pnode`       -- pnode numbers, object identity
* :mod:`repro.core.dpapi`       -- the Disclosed Provenance API
* :mod:`repro.core.observer`    -- syscall events -> provenance records
* :mod:`repro.core.analyzer`    -- duplicate elimination, cycle avoidance
* :mod:`repro.core.distributor` -- provenance of non-persistent objects
* :mod:`repro.core.libpass`     -- user-level DPAPI bindings
"""

from repro.core.pnode import ObjectRef, PnodeAllocator
from repro.core.records import Attr, Bundle, ObjType, ProvenanceRecord

__all__ = [
    "Attr",
    "Bundle",
    "ObjType",
    "ObjectRef",
    "PnodeAllocator",
    "ProvenanceRecord",
]
