"""Exception hierarchy for the PASSv2 reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Kernel-level errors mirror POSIX errno
semantics where a real kernel would return one.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class KernelError(ReproError):
    """Base class for simulated-kernel errors (POSIX-ish)."""

    errno_name = "EINVAL"


class FileNotFound(KernelError):
    """Path resolution failed (ENOENT)."""

    errno_name = "ENOENT"


class FileExists(KernelError):
    """Exclusive create hit an existing name (EEXIST)."""

    errno_name = "EEXIST"


class NotADirectory(KernelError):
    """A path component was not a directory (ENOTDIR)."""

    errno_name = "ENOTDIR"


class IsADirectory(KernelError):
    """File operation applied to a directory (EISDIR)."""

    errno_name = "EISDIR"


class DirectoryNotEmpty(KernelError):
    """rmdir on a non-empty directory (ENOTEMPTY)."""

    errno_name = "ENOTEMPTY"


class BadFileDescriptor(KernelError):
    """Operation on a closed or wrong-mode descriptor (EBADF)."""

    errno_name = "EBADF"


class CrossDeviceLink(KernelError):
    """rename across volumes (EXDEV)."""

    errno_name = "EXDEV"


class BrokenPipe(KernelError):
    """Write to a pipe with no readers (EPIPE)."""

    errno_name = "EPIPE"


class NoSuchProcess(KernelError):
    """Operation on a dead or unknown process (ESRCH)."""

    errno_name = "ESRCH"


class ProvenanceError(ReproError):
    """Base class for provenance-subsystem errors."""


class InvalidRecord(ProvenanceError):
    """A provenance record failed validation."""


class UnknownPnode(ProvenanceError):
    """A pnode number does not name any known object."""


class StalePnodeVersion(ProvenanceError):
    """pass_reviveobj was given a (pnode, version) that never existed."""


class CycleError(ProvenanceError):
    """Internal invariant violation: a cycle reached the storage layer.

    The analyzer's cycle-avoidance algorithm should make this unreachable;
    it exists so tests can assert the invariant instead of silently
    corrupting the graph.
    """


class LogCorruption(ProvenanceError):
    """The write-ahead provenance log failed to decode during recovery."""


class VolumeError(ReproError):
    """Volume configuration or capacity problem."""


class NotPassVolume(VolumeError):
    """A DPAPI operation targeted a volume without provenance support."""


class PQLError(ReproError):
    """Base class for Path Query Language errors.

    Every PQL error can carry the query position it refers to; the
    lexer/parser always supply one, the evaluator and the static
    analyzer supply one whenever the AST node they reject has one.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class PQLSyntaxError(PQLError):
    """The query text failed to lex or parse."""

    def __init__(self, message: str, line: int = 1, column: int = 0):
        super().__init__(message, line, column)


class PQLTypeError(PQLError):
    """An operation was applied to values of the wrong type."""


class PQLNameError(PQLError):
    """An unbound variable, unknown attribute, or unknown function
    was referenced."""


class NFSError(ReproError):
    """Base class for simulated-NFS protocol errors."""


class StaleHandle(NFSError):
    """Operation used a file handle the server no longer recognizes."""


class TransactionError(NFSError):
    """Provenance transaction protocol violation."""


class NetworkPartition(NFSError):
    """The simulated network refused to carry the message."""


class WorkflowError(ReproError):
    """Workflow construction or execution failure (PA-Kepler)."""


class BrowserError(ReproError):
    """Browser-level failure (PA-links), e.g. a dead URL."""
