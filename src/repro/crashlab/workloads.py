"""Deterministic workloads the crash-point explorer replays.

Each workload is a plain function ``(System) -> None`` that drives a
fixed sequence of syscalls.  Determinism is the whole point: the same
workload against the same seed produces the same site-hit sequence, so
a crash point discovered in the trace run is reachable -- at exactly
the same (site, hit) coordinate -- in every replay.

Workloads live here (not in ``repro.workloads``) because they are test
fixtures for the fault harness, sized to cover every injection site,
not Table-2 benchmark recreations.
"""

from __future__ import annotations

from repro.core.records import Attr
from repro.system import BootConfig, System

#: The boot configuration every exploration run shares: defaults, so a
#: crash point's coordinates stay comparable across workloads.  The
#: explorer layers ``faults=`` on top per replay.
BOOT = BootConfig()


def quickstart(system: System) -> None:
    """The CLI quickstart pipeline: ingest writes, transform reads and
    writes, one final sync."""
    with system.process(argv=["ingest"]) as proc:
        fd = proc.open("/pass/raw.dat", "w")
        proc.write(fd, b"1,2,3\n")
        proc.close(fd)
    with system.process(argv=["transform"]) as proc:
        fd = proc.open("/pass/raw.dat", "r")
        data = proc.read(fd)
        proc.close(fd)
        out = proc.open("/pass/result.dat", "w")
        proc.write(out, data.upper())
        proc.close(out)
    system.sync()


def churn(system: System) -> None:
    """A metadata- and overwrite-heavy mix: create, overwrite, rename,
    copy, delete, with a mid-run sync so Waldo has multiple segments
    to drain (and multiple ``waldo.drain.segment`` crash points)."""
    with system.process(argv=["churner"]) as proc:
        proc.mkdir("/pass/work")
        for index in range(8):
            fd = proc.open(f"/pass/work/src-{index}.dat", "w")
            proc.write(fd, bytes([65 + index]) * (128 + 64 * index))
            proc.close(fd)
        # Overwrite half of them (version churn + fresh MD5 records).
        for index in range(0, 8, 2):
            fd = proc.open(f"/pass/work/src-{index}.dat", "w")
            proc.write(fd, bytes([97 + index]) * 256)
            proc.close(fd)
    system.sync()
    with system.process(argv=["refiner"]) as proc:
        # Copy through a reader process: INPUT ancestry across files.
        for index in range(4):
            fd = proc.open(f"/pass/work/src-{index}.dat", "r")
            payload = proc.read(fd)
            proc.close(fd)
            out = proc.open(f"/pass/work/dst-{index}.dat", "w")
            proc.write(out, payload[::-1])
            proc.close(out)
        proc.rename("/pass/work/dst-0.dat", "/pass/work/final-0.dat")
        proc.rename("/pass/work/dst-1.dat", "/pass/work/final-1.dat")
        proc.unlink("/pass/work/src-7.dat")
        fd = proc.open("/pass/work/summary.dat", "w")
        proc.write(fd, b"refined:4\n")
        proc.close(fd)
    with system.process(argv=["annotator"]) as proc:
        # A records-only disclosure burst big enough to cross the
        # group-commit record threshold: the resulting flush happens at
        # a point the *log* chose, not a data write, so the explorer
        # gets crash points inside a group commit (log.flush.pre and
        # the Waldo drains behind it) to replay against WAP.
        dpapi = proc.dpapi
        fd = proc.open("/pass/work/summary.dat", "a")
        burst = dpapi.record_many(
            fd, Attr.ANNOTATION,
            (f"burst.{index}" for index in range(700)))
        dpapi.pass_write(fd, records=burst)
        proc.close(fd)
    system.sync()


#: Name -> workload function; the explorer and CLI enumerate this.
WORKLOADS = {
    "quickstart": quickstart,
    "churn": churn,
}
