"""crashlab: workloads + explorer harness over the fault layer.

``repro.faults`` is the injection machinery (a leaf layer: sites all
over the stack hold an injector).  This package is the *harness* that
drives whole systems through crashes and judges the recoveries; like
``repro.workloads`` and the CLI it sits above every layer and is
unconstrained by the Figure-2 import discipline.
"""

from repro.crashlab.explorer import (
    CrashPointResult,
    ExplorerReport,
    ScenarioResult,
    discover,
    explore,
    run_crash_scenario,
    scenario_fingerprint,
    wap_violations,
)
from repro.crashlab.workloads import WORKLOADS, churn, quickstart

__all__ = [
    "CrashPointResult",
    "ExplorerReport",
    "ScenarioResult",
    "WORKLOADS",
    "churn",
    "discover",
    "explore",
    "quickstart",
    "run_crash_scenario",
    "scenario_fingerprint",
    "wap_violations",
]
