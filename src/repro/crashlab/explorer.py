"""crashlab: the crash-point explorer for the WAP invariant.

The paper's strongest durability claim (section 5.6) is write-ahead
provenance: after a crash, data may exist whose provenance is *flagged*
inconsistent, but no unflagged data lacks provenance.  The explorer
turns that claim into an exhaustive test surface:

1. **Discovery** -- run a workload once with a traced (but plan-less)
   injector; every hit of a crashable site is a reachable crash point
   ``(site, hit)``.
2. **Replay** -- for each point (and each action the site honours:
   ``crash`` everywhere, plus ``torn`` at the log append), re-run the
   workload from a fresh boot with a one-rule plan that fires exactly
   there.  Determinism guarantees the point is reached.
3. **Verdict** -- simulate the machine death (Waldo requeues undrained
   segments, the Lasagna buffer is lost), run
   ``recovery.recover(consume=True)`` into Waldo's database, fsck the
   result, and check:

   * **WAP**: every data write that *completed* before the crash (the
     ``lasagna.write.post_data`` trace is the ground truth) is covered
     by a committed MD5 record in the database, or flagged in
     ``RecoveryReport.inconsistent_data``;
   * **idempotence**: a second recovery pass reports clean and inserts
     nothing;
   * **integrity**: fsck over the recovered database is clean (the
     committed prefix of the record stream satisfies every structural
     invariant).

Reports render to byte-identical JSON across runs: pnode numbers are
assigned from a process-global counter (fresh boots shift them), so
the renderer normalizes every pnode to a dense ``n<i>`` id in first
appearance order -- deterministic because the event order is.

Exposed on the command line as ``python -m repro.cli crashtest``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.pnode import ObjectRef
from repro.core.records import Attr
from repro.crashlab.workloads import BOOT, WORKLOADS
from repro.faults import CRASHABLE, FaultError, FaultInjector, FaultPlan
from repro.storage.fsck import FsckReport, fsck
from repro.storage.log import md5_unpack
from repro.storage.recovery import RecoveryReport
from repro.system import System

#: Site -> actions the explorer replays there.  Every crashable site
#: gets a plain crash; the log append additionally gets a mid-sector
#: tear (half the in-flight batch lost).
_ACTIONS_AT = {"log.flush.append": ("crash", "torn")}
_DEFAULT_ACTIONS = ("crash",)

#: Tear fraction used for explorer 'torn' replays.
TORN_PARAM = 0.5


# -- one crash scenario -------------------------------------------------------


@dataclass
class ScenarioResult:
    """Everything one crash-and-recover run produced."""

    fault: Optional[FaultError]
    lost_records: int
    requeued_segments: int
    report: RecoveryReport
    second_report: RecoveryReport
    fsck_report: FsckReport
    #: Completed data writes (pnode, offset, nbytes) that recovery
    #: neither covers with a committed MD5 record nor flags: WAP broken.
    wap_violations: list[tuple[int, int, int]]
    idempotent: bool
    db_records: int
    injector: FaultInjector
    system: System


def run_crash_scenario(workload: Callable[[System], None],
                       plan: Optional[FaultPlan] = None,
                       config=None) -> ScenarioResult:
    """Run ``workload`` under ``plan``, crash the machine (at the plan's
    fault, or after a clean finish), recover, and judge the outcome.

    This is the primitive both the explorer and the hypothesis property
    tests drive: any plan, any workload, same verdict logic.  The whole
    crash/recover path goes through the storage tier, so it exercises
    every shard of a sharded boot (``config`` overrides the default
    single-shard :data:`BOOT`).
    """
    injector = FaultInjector(plan, record_trace=True)
    system = System.boot(config=config or BOOT, faults=injector)
    fault: Optional[FaultError] = None
    try:
        workload(system)
    except FaultError as exc:
        fault = exc
    # The machine is dead either way; only durable state survives.
    requeued, lost = system.tier.crash()
    report = system.tier.recover(consume=True)
    fsck_report = fsck(system.databases())
    db_records = sum(len(db) for db in system.databases())
    second = system.tier.recover(consume=True)
    idempotent = (second.clean
                  and not second.committed_records
                  and second.torn_bytes == 0
                  and sum(len(db) for db in system.databases()) == db_records)
    violations = wap_violations(injector.trace, system.databases(), report)
    return ScenarioResult(
        fault=fault, lost_records=lost, requeued_segments=requeued,
        report=report, second_report=second, fsck_report=fsck_report,
        wap_violations=violations, idempotent=idempotent,
        db_records=db_records, injector=injector, system=system)


def wap_violations(trace, databases, report: RecoveryReport,
                   ) -> list[tuple[int, int, int]]:
    """Completed data writes with neither committed provenance nor an
    inconsistency flag -- each one falsifies the WAP invariant.

    ``databases`` is one database or a list (a sharded volume's MD5
    records span every shard database)."""
    if not isinstance(databases, (list, tuple)):
        databases = [databases]
    covered: set[tuple[int, int, int]] = set()
    for database in databases:
        for record in database.all_records():
            if record.attr == Attr.MD5 and isinstance(record.value, bytes):
                offset, length, _ = md5_unpack(record.value)
                covered.add((record.subject.pnode, offset, length))
    flagged = {(ref.pnode, offset, length)
               for ref, offset, length in report.inconsistent_data}
    violations: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int, int]] = set()
    for site, _hit, payload in trace:
        if site != "lasagna.write.post_data":
            continue
        key = (payload["pnode"], payload["offset"], payload["nbytes"])
        if key in seen:
            continue
        seen.add(key)
        if key not in covered and key not in flagged:
            violations.append(key)
    return violations


# -- exploration --------------------------------------------------------------


@dataclass
class CrashPointResult:
    """Verdict for one (workload, site, hit, action) crash point."""

    workload: str
    site: str
    hit: int
    action: str
    fired: bool
    lost_records: int
    torn_bytes: int
    committed: int
    orphaned: int
    inconsistent: int
    wap_violations: list[tuple[int, int, int]]
    fsck_findings: int
    idempotent: bool
    db_records: int

    @property
    def ok(self) -> bool:
        return (self.fired and not self.wap_violations
                and self.idempotent and self.fsck_findings == 0)


@dataclass
class ExplorerReport:
    """All crash points explored across the requested workloads."""

    seed: int
    workloads: list[str]
    site_hits: dict[str, dict[str, int]] = field(default_factory=dict)
    points: list[CrashPointResult] = field(default_factory=list)

    @property
    def crash_points(self) -> int:
        return len(self.points)

    @property
    def wap_violation_count(self) -> int:
        return sum(len(point.wap_violations) for point in self.points)

    @property
    def non_idempotent(self) -> int:
        return sum(1 for point in self.points if not point.idempotent)

    @property
    def unfired(self) -> int:
        return sum(1 for point in self.points if not point.fired)

    @property
    def fsck_dirty(self) -> int:
        return sum(1 for point in self.points if point.fsck_findings)

    @property
    def ok(self) -> bool:
        return (not self.wap_violation_count and not self.non_idempotent
                and not self.unfired and not self.fsck_dirty)

    def to_dict(self) -> dict:
        """JSON-ready, byte-deterministic across runs (normalized
        pnodes, no wall-clock anywhere)."""
        namer = _PnodeNamer()
        return {
            "schema": "repro-crashtest/1",
            "seed": self.seed,
            "workloads": list(self.workloads),
            "site_hits": {name: dict(sorted(hits.items()))
                          for name, hits in sorted(self.site_hits.items())},
            "points": [
                {
                    "workload": point.workload,
                    "site": point.site,
                    "hit": point.hit,
                    "action": point.action,
                    "fired": point.fired,
                    "lost_records": point.lost_records,
                    "torn_bytes": point.torn_bytes,
                    "committed": point.committed,
                    "orphaned": point.orphaned,
                    "inconsistent": point.inconsistent,
                    "wap_violations": [
                        {"pnode": namer.name(pnode), "offset": offset,
                         "nbytes": nbytes}
                        for pnode, offset, nbytes in point.wap_violations],
                    "fsck_findings": point.fsck_findings,
                    "idempotent": point.idempotent,
                    "db_records": point.db_records,
                }
                for point in self.points
            ],
            "totals": {
                "crash_points": self.crash_points,
                "wap_violations": self.wap_violation_count,
                "non_idempotent": self.non_idempotent,
                "unfired": self.unfired,
                "fsck_dirty": self.fsck_dirty,
                "ok": self.ok,
            },
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def discover(workload: Callable[[System], None],
             config=None) -> FaultInjector:
    """Trace run: which sites does this workload reach, how often?"""
    injector = FaultInjector(record_trace=True)
    system = System.boot(config=config or BOOT, faults=injector)
    workload(system)
    return injector


def explore(workloads: Optional[list[str]] = None,
            seed: int = 0, config=None) -> ExplorerReport:
    """Enumerate every reachable crash point of each workload and
    replay the workload once per point (same seed).  ``config``
    overrides the boot topology -- ``repro crashtest --shards N``
    explores the same workloads over a sharded tier."""
    names = list(workloads) if workloads else sorted(WORKLOADS)
    report = ExplorerReport(seed=seed, workloads=names)
    for name in names:
        workload = WORKLOADS[name]
        trace_injector = discover(workload, config=config)
        report.site_hits[name] = {
            site: hits for site, hits in trace_injector.hits.items()
            if site in CRASHABLE}
        for site, hit, _payload in trace_injector.trace:
            if site not in CRASHABLE:
                continue
            for action in _ACTIONS_AT.get(site, _DEFAULT_ACTIONS):
                plan = FaultPlan(seed=seed).add(
                    site, action, nth=hit, param=TORN_PARAM)
                result = run_crash_scenario(workload, plan, config=config)
                report.points.append(CrashPointResult(
                    workload=name, site=site, hit=hit, action=action,
                    fired=result.injector.faults_fired > 0,
                    lost_records=result.lost_records,
                    torn_bytes=result.report.torn_bytes,
                    committed=len(result.report.committed_records),
                    orphaned=len(result.report.orphaned_records),
                    inconsistent=len(result.report.inconsistent_data),
                    wap_violations=result.wap_violations,
                    fsck_findings=len(result.fsck_report.findings),
                    idempotent=result.idempotent,
                    db_records=result.db_records))
    return report


# -- determinism fingerprinting ----------------------------------------------


class _PnodeNamer:
    """Dense, first-appearance pnode naming for byte-stable JSON.

    Raw pnode numbers embed a process-global volume-id counter, so two
    otherwise identical runs disagree on them; the *sequence* of
    appearances is deterministic, which makes this mapping stable.
    """

    def __init__(self) -> None:
        self._names: dict[int, str] = {}

    def name(self, pnode: int) -> str:
        if pnode not in self._names:
            self._names[pnode] = f"n{len(self._names)}"
        return self._names[pnode]


def _render_value(value, namer: _PnodeNamer):
    if isinstance(value, ObjectRef):
        return ["ref", namer.name(value.pnode), value.version]
    if isinstance(value, bytes):
        return ["bytes", value.hex()]
    return [type(value).__name__, str(value)]


def scenario_fingerprint(result: ScenarioResult) -> dict:
    """A normalized rendering of one scenario's RecoveryReport + fsck
    output.  Two runs of the same plan + seed must produce identical
    JSON for this dict (the determinism regression contract)."""
    namer = _PnodeNamer()

    def render_record(record):
        return [namer.name(record.subject.pnode), record.subject.version,
                str(record.attr), _render_value(record.value, namer)]

    return {
        "fault": (type(result.fault).__name__ if result.fault else None),
        "fault_site": getattr(result.fault, "site", None),
        "lost_records": result.lost_records,
        "requeued_segments": result.requeued_segments,
        "recovery": {
            "committed": [render_record(record)
                          for record in result.report.committed_records],
            "orphaned": [render_record(record)
                         for record in result.report.orphaned_records],
            "inconsistent": [
                [namer.name(ref.pnode), ref.version, offset, nbytes]
                for ref, offset, nbytes in result.report.inconsistent_data],
            "torn_bytes": result.report.torn_bytes,
            "clean": result.report.clean,
        },
        "fsck": {
            "clean": result.fsck_report.clean,
            "objects_checked": result.fsck_report.objects_checked,
            "records_checked": result.fsck_report.records_checked,
            "findings": [
                [finding.check, namer.name(finding.subject.pnode),
                 finding.subject.version, finding.detail]
                for finding in result.fsck_report.findings],
        },
        "wap_violations": [
            [namer.name(pnode), offset, nbytes]
            for pnode, offset, nbytes in result.wap_violations],
        "idempotent": result.idempotent,
        "db_records": result.db_records,
    }
