"""Storage layer: Lasagna, the provenance log, Waldo, and the database.

Lasagna (:mod:`repro.storage.lasagna`) is the provenance-aware file
system: a stackable layer interposed above an ext3-style volume that
implements the DPAPI alongside regular VFS calls and enforces
write-ahead provenance (WAP) through a transactional log
(:mod:`repro.storage.log`).

Waldo (:mod:`repro.storage.waldo`) is the user-level daemon that drains
closed log segments into the indexed provenance database
(:mod:`repro.storage.database`) and serves the query engine.

:mod:`repro.storage.recovery` replays the log after a crash, discarding
orphaned transactions and flagging data whose checksum shows it was
in flight when the machine died.
"""

from repro.storage.database import ProvenanceDatabase
from repro.storage.lasagna import Lasagna
from repro.storage.waldo import Waldo

__all__ = ["Lasagna", "ProvenanceDatabase", "Waldo"]
