"""passfsck: integrity checking for a provenance database.

The WAP protocol and the analyzer guarantee a set of structural
invariants; this checker verifies them over a (possibly merged)
database, the way fsck verifies a file system after the fact:

1. **Acyclicity** -- the ancestry graph over (pnode, version) is a DAG;
2. **Version chains** -- every version > 0 carries exactly one
   PREV_VERSION record pointing to version - 1;
3. **No dangling references** -- every cross-reference names an object
   that has records of its own (or is a known base version of one);
4. **Identity presence** -- every object with ancestry records also has
   a TYPE record somewhere in its history;
5. **Version monotonicity** -- versions of a pnode form a contiguous
   range starting at 0;
6. **No framing leakage** -- BEGINTXN/ENDTXN never appear in a database
   (Waldo strips them).

Each violation is reported, not raised, so the checker can run over
deliberately damaged stores in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.pnode import ObjectRef
from repro.core.records import Attr


@dataclass
class Finding:
    """One invariant violation."""

    check: str
    subject: ObjectRef
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.subject}: {self.detail}"


@dataclass
class FsckReport:
    """Outcome of one integrity pass."""

    findings: list[Finding] = field(default_factory=list)
    objects_checked: int = 0
    records_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_check(self, check: str) -> list[Finding]:
        return [finding for finding in self.findings
                if finding.check == check]

    def __str__(self) -> str:
        status = "clean" if self.clean else f"{len(self.findings)} finding(s)"
        return (f"passfsck: {self.objects_checked} objects, "
                f"{self.records_checked} records, {status}")

    def to_dict(self) -> dict:
        """JSON-ready summary (the CLI's ``fsck --json`` reporter)."""
        return {
            "clean": self.clean,
            "objects_checked": self.objects_checked,
            "records_checked": self.records_checked,
            "findings": [
                {
                    "check": finding.check,
                    "subject": {"pnode": finding.subject.pnode,
                                "version": finding.subject.version},
                    "detail": finding.detail,
                }
                for finding in self.findings
            ],
        }


def fsck(databases: Iterable) -> FsckReport:
    """Run every check over the merged databases."""
    databases = list(databases)
    report = FsckReport()

    # Gather the universe once.
    versions: dict[int, set[int]] = {}
    attrs_by_subject: dict[ObjectRef, set[str]] = {}
    edges: dict[ObjectRef, list[ObjectRef]] = {}
    prev_links: dict[ObjectRef, list[ObjectRef]] = {}
    referenced: set[ObjectRef] = set()
    typed_pnodes: set[int] = set()

    for database in databases:
        for record in database.all_records():
            report.records_checked += 1
            subject = record.subject
            versions.setdefault(subject.pnode, set()).add(subject.version)
            attrs_by_subject.setdefault(subject, set()).add(record.attr)
            if record.attr == Attr.TYPE:
                typed_pnodes.add(subject.pnode)
            if record.attr in (Attr.BEGINTXN, Attr.ENDTXN):
                report.findings.append(Finding(
                    "framing-leak", subject,
                    f"{record.attr} record inside the database"))
            if isinstance(record.value, ObjectRef):
                referenced.add(record.value)
                if record.is_ancestry:
                    edges.setdefault(subject, []).append(record.value)
                if record.attr == Attr.PREV_VERSION:
                    prev_links.setdefault(subject, []).append(record.value)

    report.objects_checked = len(versions)

    _check_acyclic(edges, report)
    _check_version_chains(versions, prev_links, report)
    _check_dangling(referenced, versions, report)
    _check_identity(edges, typed_pnodes, report)
    _check_monotonic(versions, report)
    return report


def _check_acyclic(edges, report: FsckReport) -> None:
    state: dict[ObjectRef, int] = {}
    # Iterative DFS (damaged stores can be deep).
    for root in list(edges):
        if state.get(root, 0) != 0:
            continue
        stack = [(root, iter(edges.get(root, ())))]
        state[root] = 1
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                code = state.get(child, 0)
                if code == 1:
                    report.findings.append(Finding(
                        "cycle", child, "ancestry cycle detected"))
                    continue
                if code == 0:
                    state[child] = 1
                    stack.append((child, iter(edges.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                stack.pop()


def _check_version_chains(versions, prev_links, report: FsckReport) -> None:
    for pnode, seen in versions.items():
        for version in sorted(seen):
            if version == 0:
                continue
            ref = ObjectRef(pnode, version)
            links = prev_links.get(ref, [])
            if not links:
                report.findings.append(Finding(
                    "version-chain", ref, "missing PREV_VERSION record"))
            elif any(link != ObjectRef(pnode, version - 1)
                     for link in links):
                report.findings.append(Finding(
                    "version-chain", ref,
                    f"PREV_VERSION points at {links}, expected "
                    f"{ObjectRef(pnode, version - 1)}"))


def _check_dangling(referenced, versions, report: FsckReport) -> None:
    for ref in referenced:
        known = versions.get(ref.pnode)
        if known is None:
            report.findings.append(Finding(
                "dangling-ref", ref,
                "reference to a pnode with no records at all"))
        elif ref.version not in known and ref.version > max(known):
            report.findings.append(Finding(
                "dangling-ref", ref,
                f"reference to version {ref.version}, but only versions "
                f"<= {max(known)} exist"))


def _check_identity(edges, typed_pnodes, report: FsckReport) -> None:
    flagged: set[int] = set()
    for subject in edges:
        if subject.pnode not in typed_pnodes \
                and subject.pnode not in flagged:
            flagged.add(subject.pnode)
            report.findings.append(Finding(
                "missing-type", subject,
                "object has ancestry but no TYPE record"))


def _check_monotonic(versions, report: FsckReport) -> None:
    for pnode, seen in versions.items():
        expected = set(range(max(seen) + 1))
        missing = expected - seen
        if missing:
            report.findings.append(Finding(
                "version-gap", ObjectRef(pnode, min(missing)),
                f"versions {sorted(missing)} absent from the store"))
