"""Binary codec for provenance records.

The log and the database store records in a compact binary form; the
encoded length is what the space-overhead benchmarks (paper Table 3)
measure.  Layout of one record::

    8 bytes   subject pnode (unsigned big-endian)
    4 bytes   subject version
    1 byte    attribute name length, then UTF-8 attribute name
    1 byte    value type tag
    payload   type-dependent (see TAG_* below)

The codec is self-delimiting, so a log segment is just concatenated
records; recovery walks it record by record and stops at the first
truncated/corrupt one.
"""

from __future__ import annotations

import struct
from typing import Iterable, Optional

from repro.core.errors import InvalidRecord, LogCorruption
from repro.core.pnode import ObjectRef
from repro.core.records import ProvenanceRecord, Value

TAG_INT = 0x01
TAG_FLOAT = 0x02
TAG_STR = 0x03
TAG_BYTES = 0x04
TAG_BOOL = 0x05
TAG_REF = 0x06

_HEAD = struct.Struct(">QI")          # pnode, version
_TAG_STR = bytes([TAG_STR])           # pre-built tag for the str fast path
_REF = struct.Struct(">QI")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_LEN = struct.Struct(">I")


def encode_value(value: Value) -> bytes:
    """Encode one record value with its type tag."""
    # bool before int: bool is an int subclass.
    if isinstance(value, bool):
        return bytes([TAG_BOOL, 1 if value else 0])
    if isinstance(value, ObjectRef):
        return bytes([TAG_REF]) + _REF.pack(value.pnode, value.version)
    if isinstance(value, int):
        return bytes([TAG_INT]) + _I64.pack(value)
    if isinstance(value, float):
        return bytes([TAG_FLOAT]) + _F64.pack(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return bytes([TAG_STR]) + _LEN.pack(len(raw)) + raw
    if isinstance(value, bytes):
        return bytes([TAG_BYTES]) + _LEN.pack(len(value)) + value
    raise TypeError(f"unencodable value type: {type(value).__name__}")


def decode_value(buf: bytes, offset: int) -> tuple[Value, int]:
    """Decode one value at ``offset``; returns (value, next offset)."""
    try:
        tag = buf[offset]
        offset += 1
        if tag == TAG_BOOL:
            return bool(buf[offset]), offset + 1
        if tag == TAG_REF:
            pnode, version = _REF.unpack_from(buf, offset)
            return ObjectRef(pnode, version), offset + _REF.size
        if tag == TAG_INT:
            return _I64.unpack_from(buf, offset)[0], offset + _I64.size
        if tag == TAG_FLOAT:
            return _F64.unpack_from(buf, offset)[0], offset + _F64.size
        if tag in (TAG_STR, TAG_BYTES):
            (length,) = _LEN.unpack_from(buf, offset)
            offset += _LEN.size
            raw = buf[offset:offset + length]
            if len(raw) != length:
                raise LogCorruption("truncated value payload")
            offset += length
            if tag == TAG_STR:
                try:
                    return raw.decode("utf-8"), offset
                except UnicodeDecodeError as exc:
                    raise LogCorruption(
                        f"corrupt string payload: {exc}") from exc
            return bytes(raw), offset
    except (IndexError, struct.error) as exc:
        raise LogCorruption(f"truncated record value: {exc}") from exc
    raise LogCorruption(f"unknown value tag: {tag:#x}")


def encode_record(record: ProvenanceRecord) -> bytes:
    """Encode one record (self-delimiting)."""
    attr_raw = record.attr.encode("utf-8")
    if len(attr_raw) > 255:
        raise ValueError(f"attribute name too long: {record.attr!r}")
    return b"".join((
        _HEAD.pack(record.subject.pnode, record.subject.version),
        bytes([len(attr_raw)]),
        attr_raw,
        encode_value(record.value),
    ))


def decode_record(buf: bytes, offset: int = 0) -> tuple[ProvenanceRecord, int]:
    """Decode one record at ``offset``; returns (record, next offset)."""
    try:
        pnode, version = _HEAD.unpack_from(buf, offset)
        offset += _HEAD.size
        attr_len = buf[offset]
        offset += 1
        attr_raw = buf[offset:offset + attr_len]
        if len(attr_raw) != attr_len:
            raise LogCorruption("truncated attribute name")
        offset += attr_len
    except (IndexError, struct.error) as exc:
        raise LogCorruption(f"truncated record header: {exc}") from exc
    value, offset = decode_value(buf, offset)
    try:
        record = ProvenanceRecord(ObjectRef(pnode, version),
                                  attr_raw.decode("utf-8"), value)
    except UnicodeDecodeError as exc:
        raise LogCorruption(f"corrupt attribute name: {exc}") from exc
    except InvalidRecord as exc:
        # A zeroed attribute-length byte decodes to an empty name; the
        # record validator rejects it, recovery just stops there.
        raise LogCorruption(f"corrupt record: {exc}") from exc
    return record, offset


def decode_stream(buf: bytes) -> Iterable[ProvenanceRecord]:
    """Decode concatenated records, stopping cleanly at a truncation.

    Yields records up to the first undecodable point; a trailing partial
    record (a crash mid-flush) is silently dropped, which is exactly the
    semantics recovery wants.
    """
    offset = 0
    while offset < len(buf):
        try:
            record, offset = decode_record(buf, offset)
        except LogCorruption:
            return
        yield record


def encoded_size(record: ProvenanceRecord) -> int:
    """Encoded length of a record, computed arithmetically.

    Equals ``len(encode_record(record))`` (property-tested) without
    building any bytes -- this runs once per record on the database
    insert path and once per append on the log's byte accounting, so it
    must stay allocation-free.
    """
    value = record.value
    # Exact-class tests first (the overwhelmingly common case); the
    # isinstance chain below only catches subclasses.  bool must stay
    # ahead of int in both chains (bool is an int subclass).
    cls = value.__class__
    if cls is str:
        vsize = 5 + (len(value) if value.isascii()
                     else len(value.encode("utf-8")))
    elif cls is ObjectRef:
        vsize = 1 + _REF.size
    elif cls is bool:
        vsize = 2
    elif cls is int or cls is float:
        vsize = 9
    elif cls is bytes:
        vsize = 5 + len(value)
    elif isinstance(value, bool):
        vsize = 2
    elif isinstance(value, ObjectRef):
        vsize = 1 + _REF.size
    elif isinstance(value, (int, float)):
        vsize = 9
    elif isinstance(value, str):
        vsize = 5 + (len(value) if value.isascii()
                     else len(value.encode("utf-8")))
    elif isinstance(value, bytes):
        vsize = 5 + len(value)
    else:
        raise TypeError(f"unencodable value type: {type(value).__name__}")
    attr = record.attr
    attr_len = len(attr) if attr.isascii() else len(attr.encode("utf-8"))
    return _HEAD.size + 1 + attr_len + vsize


class RecordEncoder:
    """Memoizing encoder for the group-commit flush path.

    A flush encodes many records that share a small working set of
    subjects, attribute names, and cross-reference targets (block I/O
    produces runs of records about the same few objects).  The encoder
    interns the three reusable fragments of the wire format -- subject
    head, length-prefixed attribute name, and tagged ObjectRef value --
    so a batch encode is mostly dictionary hits plus one ``bytes.join``.

    Output is byte-identical to :func:`encode_record` (property-tested).
    Caches are capped; on overflow they are cleared (the working set has
    moved on, so LRU bookkeeping would cost more than it saves).
    """

    _CAP = 8192

    __slots__ = ("_heads", "_attrs", "_refs",
                 "_run_subject", "_run_attr", "_run_head_prefix")

    def __init__(self) -> None:
        self._heads: dict[ObjectRef, bytes] = {}
        self._attrs: dict[str, bytes] = {}
        self._refs: dict[ObjectRef, bytes] = {}
        # Run memo: batches arrive as runs of records sharing the same
        # subject ref *instance* and (interned) attribute string, so the
        # concatenated head+prefix from the previous record is reusable
        # after two identity tests -- no hashing, no concat.
        self._run_subject: Optional[ObjectRef] = None
        self._run_attr: Optional[str] = None
        self._run_head_prefix = b""

    def encode(self, record: ProvenanceRecord) -> bytes:
        """Encode one record (identical bytes to :func:`encode_record`)."""
        subject = record.subject
        attr = record.attr
        if subject is self._run_subject and attr is self._run_attr:
            head_prefix = self._run_head_prefix
        else:
            head = self._heads.get(subject)
            if head is None:
                if len(self._heads) >= self._CAP:
                    self._heads.clear()
                head = _HEAD.pack(subject.pnode, subject.version)
                self._heads[subject] = head
            prefix = self._attrs.get(attr)
            if prefix is None:
                raw = attr.encode("utf-8")
                if len(raw) > 255:
                    raise ValueError(f"attribute name too long: {attr!r}")
                if len(self._attrs) >= self._CAP:
                    self._attrs.clear()
                prefix = bytes([len(raw)]) + raw
                self._attrs[attr] = prefix
            head_prefix = head + prefix
            self._run_subject = subject
            self._run_attr = attr
            self._run_head_prefix = head_prefix
        value = record.value
        if value.__class__ is str:
            # Unique strings (annotations, names) defeat memoization, so
            # the common tail is encoded inline instead of paying the
            # encode_value isinstance chain per record.
            raw = value.encode("utf-8")
            tail = _TAG_STR + _LEN.pack(len(raw)) + raw
        elif isinstance(value, ObjectRef):
            tail = self._refs.get(value)
            if tail is None:
                if len(self._refs) >= self._CAP:
                    self._refs.clear()
                tail = bytes([TAG_REF]) + _REF.pack(value.pnode,
                                                    value.version)
                self._refs[value] = tail
        else:
            tail = encode_value(value)
        return head_prefix + tail

    def encode_list(self, records: Iterable[ProvenanceRecord]) -> list[bytes]:
        """Encode records into one chunk each (the group-commit buffer).

        Byte-for-byte what ``[self.encode(r) for r in records]`` returns,
        with the run memo, caches, and value fast paths held in locals so
        the per-record cost is the loop body alone -- no method dispatch.
        """
        heads = self._heads
        attrs = self._attrs
        refs = self._refs
        cap = self._CAP
        run_subject = self._run_subject
        run_attr = self._run_attr
        head_prefix = self._run_head_prefix
        pack_len = _LEN.pack
        out: list[bytes] = []
        append = out.append
        for record in records:
            subject = record.subject
            attr = record.attr
            if subject is not run_subject or attr is not run_attr:
                head = heads.get(subject)
                if head is None:
                    if len(heads) >= cap:
                        heads.clear()
                    head = _HEAD.pack(subject.pnode, subject.version)
                    heads[subject] = head
                prefix = attrs.get(attr)
                if prefix is None:
                    raw = attr.encode("utf-8")
                    if len(raw) > 255:
                        raise ValueError(
                            f"attribute name too long: {attr!r}")
                    if len(attrs) >= cap:
                        attrs.clear()
                    prefix = bytes([len(raw)]) + raw
                    attrs[attr] = prefix
                head_prefix = head + prefix
                run_subject = subject
                run_attr = attr
            value = record.value
            if value.__class__ is str:
                raw = value.encode("utf-8")
                append(head_prefix + _TAG_STR + pack_len(len(raw)) + raw)
            elif isinstance(value, ObjectRef):
                tail = refs.get(value)
                if tail is None:
                    if len(refs) >= cap:
                        refs.clear()
                    tail = bytes([TAG_REF]) + _REF.pack(value.pnode,
                                                        value.version)
                    refs[value] = tail
                append(head_prefix + tail)
            else:
                append(head_prefix + encode_value(value))
        self._run_subject = run_subject
        self._run_attr = run_attr
        self._run_head_prefix = head_prefix
        return out

    def encode_batch(self, records: Iterable[ProvenanceRecord]) -> bytes:
        """Encode a whole batch into one contiguous byte string."""
        return b"".join(self.encode_list(records))
