"""Binary codec for provenance records.

The log and the database store records in a compact binary form; the
encoded length is what the space-overhead benchmarks (paper Table 3)
measure.  Layout of one record::

    8 bytes   subject pnode (unsigned big-endian)
    4 bytes   subject version
    1 byte    attribute name length, then UTF-8 attribute name
    1 byte    value type tag
    payload   type-dependent (see TAG_* below)

The codec is self-delimiting, so a log segment is just concatenated
records; recovery walks it record by record and stops at the first
truncated/corrupt one.
"""

from __future__ import annotations

import struct
from typing import Iterable

from repro.core.errors import LogCorruption
from repro.core.pnode import ObjectRef
from repro.core.records import ProvenanceRecord, Value

TAG_INT = 0x01
TAG_FLOAT = 0x02
TAG_STR = 0x03
TAG_BYTES = 0x04
TAG_BOOL = 0x05
TAG_REF = 0x06

_HEAD = struct.Struct(">QI")          # pnode, version
_REF = struct.Struct(">QI")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_LEN = struct.Struct(">I")


def encode_value(value: Value) -> bytes:
    """Encode one record value with its type tag."""
    # bool before int: bool is an int subclass.
    if isinstance(value, bool):
        return bytes([TAG_BOOL, 1 if value else 0])
    if isinstance(value, ObjectRef):
        return bytes([TAG_REF]) + _REF.pack(value.pnode, value.version)
    if isinstance(value, int):
        return bytes([TAG_INT]) + _I64.pack(value)
    if isinstance(value, float):
        return bytes([TAG_FLOAT]) + _F64.pack(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return bytes([TAG_STR]) + _LEN.pack(len(raw)) + raw
    if isinstance(value, bytes):
        return bytes([TAG_BYTES]) + _LEN.pack(len(value)) + value
    raise TypeError(f"unencodable value type: {type(value).__name__}")


def decode_value(buf: bytes, offset: int) -> tuple[Value, int]:
    """Decode one value at ``offset``; returns (value, next offset)."""
    try:
        tag = buf[offset]
        offset += 1
        if tag == TAG_BOOL:
            return bool(buf[offset]), offset + 1
        if tag == TAG_REF:
            pnode, version = _REF.unpack_from(buf, offset)
            return ObjectRef(pnode, version), offset + _REF.size
        if tag == TAG_INT:
            return _I64.unpack_from(buf, offset)[0], offset + _I64.size
        if tag == TAG_FLOAT:
            return _F64.unpack_from(buf, offset)[0], offset + _F64.size
        if tag in (TAG_STR, TAG_BYTES):
            (length,) = _LEN.unpack_from(buf, offset)
            offset += _LEN.size
            raw = buf[offset:offset + length]
            if len(raw) != length:
                raise LogCorruption("truncated value payload")
            offset += length
            if tag == TAG_STR:
                return raw.decode("utf-8"), offset
            return bytes(raw), offset
    except (IndexError, struct.error) as exc:
        raise LogCorruption(f"truncated record value: {exc}") from exc
    raise LogCorruption(f"unknown value tag: {tag:#x}")


def encode_record(record: ProvenanceRecord) -> bytes:
    """Encode one record (self-delimiting)."""
    attr_raw = record.attr.encode("utf-8")
    if len(attr_raw) > 255:
        raise ValueError(f"attribute name too long: {record.attr!r}")
    return b"".join((
        _HEAD.pack(record.subject.pnode, record.subject.version),
        bytes([len(attr_raw)]),
        attr_raw,
        encode_value(record.value),
    ))


def decode_record(buf: bytes, offset: int = 0) -> tuple[ProvenanceRecord, int]:
    """Decode one record at ``offset``; returns (record, next offset)."""
    try:
        pnode, version = _HEAD.unpack_from(buf, offset)
        offset += _HEAD.size
        attr_len = buf[offset]
        offset += 1
        attr_raw = buf[offset:offset + attr_len]
        if len(attr_raw) != attr_len:
            raise LogCorruption("truncated attribute name")
        offset += attr_len
    except (IndexError, struct.error) as exc:
        raise LogCorruption(f"truncated record header: {exc}") from exc
    value, offset = decode_value(buf, offset)
    record = ProvenanceRecord(ObjectRef(pnode, version),
                              attr_raw.decode("utf-8"), value)
    return record, offset


def decode_stream(buf: bytes) -> Iterable[ProvenanceRecord]:
    """Decode concatenated records, stopping cleanly at a truncation.

    Yields records up to the first undecodable point; a trailing partial
    record (a crash mid-flush) is silently dropped, which is exactly the
    semantics recovery wants.
    """
    offset = 0
    while offset < len(buf):
        try:
            record, offset = decode_record(buf, offset)
        except LogCorruption:
            return
        yield record


def encoded_size(record: ProvenanceRecord) -> int:
    """Encoded length of a record without building the bytes twice."""
    return len(encode_record(record))
