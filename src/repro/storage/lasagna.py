"""Lasagna: the provenance-aware file system (section 5.6).

Lasagna is a *stackable* file system (the paper built it on the eCryptfs
code base) interposed above an ext3-style volume.  It implements the
DPAPI in addition to the regular VFS calls:

* data writes flush the provenance log first (**write-ahead
  provenance**), wrap the flush in a transaction, and record an MD5 of
  the data so recovery can detect in-flight writes;
* data reads and writes pay the stackable-file-system tax: a per-page
  copy between the upper and lower page caches (double buffering) --
  the effect behind Postmark's overhead in the paper's Table 2;
* provenance-only writes (``append_provenance``) buffer records until
  the next data write or sync forces them out, preserving WAP order.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import KernelError
from repro.core.records import Attr, Bundle, ProvenanceRecord, RecordBatch
from repro.kernel.params import SimParams
from repro.kernel.vfs import Inode
from repro.kernel.volume import Volume
from repro.obs import NULL_OBS
from repro.storage.log import ProvenanceLog, data_digest, md5_value


class CrashPoint(KernelError):
    """Raised by the fault-injection hook to simulate a crash mid-write."""

    errno_name = "EIO"


class Lasagna:
    """Stackable provenance-aware file system over one volume."""

    def __init__(self, volume: Volume, params: Optional[SimParams] = None,
                 obs=NULL_OBS, faults=None):
        if not volume.pass_capable:
            from repro.core.errors import NotPassVolume
            raise NotPassVolume(
                f"volume {volume.name!r} was not created PASS-capable"
            )
        self.volume = volume
        self.params = params or SimParams()
        self.obs = obs
        #: Fault injector (repro.faults); None keeps the write path bare.
        self._faults = faults
        self.log = ProvenanceLog(
            volume.clock, self.params.log, disk_write=self._log_disk_write,
            faults=faults, obs=obs, volume_name=volume.name,
        )
        volume.lasagna = self
        volume.fs_top = self
        #: Fault injection: crash after the WAP flush, before this many
        #: further data writes complete (None = off).
        self.fail_before_data_write = False
        self._waive_barrier = False
        #: Ablation switch: write provenance PASSv1-style -- synchronous,
        #: indexed-database-like writes (full seek per flush) instead of
        #: the clustered log + Waldo pipeline.
        self.passv1_direct_db = False
        # Statistics.
        self.stack_pages_copied = 0
        self.data_writes = 0
        # WAP log bytes/flushes and the stackable-copy tax, per volume
        # (harvested at snapshot time; the write path stays bare).
        obs.add_collector("lasagna", self._obs_counters,
                          volume=volume.name)
        obs.add_collector("lasagna", self.log.obs_counters,
                          volume=volume.name)

    def _obs_counters(self) -> dict:
        return {
            "stack_pages_copied": self.stack_pages_copied,
            "data_writes": self.data_writes,
        }

    # -- log plumbing ----------------------------------------------------------------

    def _log_disk_write(self, nbytes: int) -> None:
        """Append ``nbytes`` to the volume's provenance-log region.

        Log appends are clustered write-back I/O, but each flush is an
        ordering point (provenance must land *before* the data it
        describes), which charges the WAP barrier -- the interference
        mechanism behind the paper's Table 2 elapsed-time overheads.
        """
        region = self.volume.provlog_region
        blocks = max(1, -(-nbytes // self.volume.block_size))
        first = region.allocate(blocks)
        if self.passv1_direct_db:
            # PASSv1 regression: indexed B-tree writes, random placement,
            # no batching -- a full seek per flush plus index update I/O.
            self.volume.disk.write(first, nbytes * 2)
            return
        barrier = 0.0 if self._waive_barrier else (
            self.volume.disk.params.wap_barrier)
        self.volume.disk.clustered_write(nbytes, barrier=barrier)

    def append_provenance(self, bundle: Bundle) -> None:
        """Buffer records ahead of dependent data.

        Accepts a :class:`Bundle` (the per-record legacy path) or a
        :class:`RecordBatch` (the batched ingest path, which defers
        encoding and may group-commit inside ``append_batch``).
        """
        cost = self.params.cpu.log_encode * len(bundle)
        if cost:
            self.volume.clock.advance(cost, "provenance_cpu")
        if isinstance(bundle, RecordBatch):
            self.obs.observe("lasagna", "batch_size", len(bundle),
                             volume=self.volume.name)
            self.log.append_batch(bundle.records)
            return
        for record in bundle:
            self.log.append(record)

    def sync(self) -> None:
        """Flush the log, rotate it, and let Waldo drain it."""
        with self.obs.span("lasagna.sync", layer="lasagna",
                           volume=self.volume.name):
            self.log.flush()
            self.log.rotate()

    # -- stackable data path -----------------------------------------------------------

    def _stack_cost(self, nbytes: int) -> None:
        pages = max(1, -(-nbytes // self.volume.block_size))
        self.stack_pages_copied += pages
        cost = pages * self.params.cache.stack_copy_cost
        self.volume.clock.advance(cost, "stack_copy")

    def write_bytes(self, inode: Inode, offset: int, data: Optional[bytes],
                    length: Optional[int] = None) -> int:
        """The DPAPI pass_write data path: WAP flush, then the write."""
        nbytes = len(data) if data is not None else (length or 0)
        # Record the data checksum with the provenance (recovery evidence),
        # then make all of it durable before the data itself (WAP).  For
        # large writes the ordering point hides inside the multi-block
        # transfer, so the barrier latency is waived.
        digest = data_digest(data, nbytes)
        self.log.append(ProvenanceRecord(
            inode.ref(), Attr.MD5, md5_value(offset, nbytes, digest),
        ))
        self._waive_barrier = nbytes >= 65536
        try:
            self.log.flush(txn_subject=inode.ref())
        finally:
            self._waive_barrier = False
        if self.fail_before_data_write:
            raise CrashPoint(
                f"injected crash before data write to inode {inode.ino}"
            )
        if self._faults is not None:
            # The canonical WAP window: provenance durable, data not.
            self._faults.fire("lasagna.write.pre_data",
                              pnode=inode.pnode, offset=offset,
                              nbytes=nbytes)
        self._stack_cost(nbytes)
        self.data_writes += 1
        written = self.volume.write_bytes(inode, offset, data, length)
        if self._faults is not None:
            # Ground truth for the WAP checker: this write completed,
            # so its provenance must survive recovery (or be flagged).
            self._faults.fire("lasagna.write.post_data",
                              pnode=inode.pnode, offset=offset,
                              nbytes=nbytes)
        return written

    def read_bytes(self, inode: Inode, offset: int, length: int) -> bytes:
        """Read through the stack (upper-cache copy cost applies)."""
        data = self.volume.read_bytes(inode, offset, length)
        self._stack_cost(len(data))
        return data

    def truncate(self, inode: Inode, size: int) -> None:
        """Pass-through metadata operation."""
        self.volume.truncate(inode, size)

    # -- crash simulation -----------------------------------------------------------------

    def crash(self, drop_tail_bytes: int = 0) -> int:
        """Machine crash: unflushed provenance is lost; optionally tear
        the on-disk log tail.  Returns lost record count."""
        self.fail_before_data_write = False
        return self.log.crash(drop_tail_bytes)

    def __repr__(self) -> str:
        return f"<Lasagna over {self.volume.name}>"
