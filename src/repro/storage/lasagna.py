"""Lasagna: the provenance-aware file system (section 5.6).

Lasagna is a *stackable* file system (the paper built it on the eCryptfs
code base) interposed above an ext3-style volume.  It implements the
DPAPI in addition to the regular VFS calls:

* data writes flush the provenance log first (**write-ahead
  provenance**), wrap the flush in a transaction, and record an MD5 of
  the data so recovery can detect in-flight writes;
* data reads and writes pay the stackable-file-system tax: a per-page
  copy between the upper and lower page caches (double buffering) --
  the effect behind Postmark's overhead in the paper's Table 2;
* provenance-only writes (``append_provenance``) buffer records until
  the next data write or sync forces them out, preserving WAP order.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import KernelError
from repro.core.pnode import shard_of
from repro.core.records import Attr, Bundle, ProvenanceRecord, RecordBatch
from repro.kernel.params import SimParams
from repro.kernel.vfs import Inode
from repro.kernel.volume import Volume
from repro.obs import NULL_OBS
from repro.storage.log import ProvenanceLog, data_digest, md5_value


class CrashPoint(KernelError):
    """Raised by the fault-injection hook to simulate a crash mid-write."""

    errno_name = "EIO"


class Lasagna:
    """Stackable provenance-aware file system over one volume."""

    def __init__(self, volume: Volume, params: Optional[SimParams] = None,
                 obs=NULL_OBS, faults=None, shards: int = 1):
        if not volume.pass_capable:
            from repro.core.errors import NotPassVolume
            raise NotPassVolume(
                f"volume {volume.name!r} was not created PASS-capable"
            )
        self.volume = volume
        self.params = params or SimParams()
        self.obs = obs
        #: Fault injector (repro.faults); None keeps the write path bare.
        self._faults = faults
        #: Intra-volume WAP-log shards (1 = the classic single log).
        #: Records route by subject-pnode hash, so a subject's records
        #: stay ordered within one shard; ``self.log`` aliases shard 0
        #: for the unsharded API surface (and IS the log at shards=1).
        self.shards = max(1, int(shards))
        self.shard_logs: list[ProvenanceLog] = []
        for index in range(self.shards):
            label = (volume.name if self.shards == 1
                     else f"{volume.name}/s{index}")
            self.shard_logs.append(ProvenanceLog(
                volume.clock, self.params.log,
                disk_write=self._log_disk_write,
                faults=faults, obs=obs, volume_name=label,
            ))
        self.log = self.shard_logs[0]
        volume.lasagna = self
        volume.fs_top = self
        #: Fault injection: crash after the WAP flush, before this many
        #: further data writes complete (None = off).
        self.fail_before_data_write = False
        self._waive_barrier = False
        #: Ablation switch: write provenance PASSv1-style -- synchronous,
        #: indexed-database-like writes (full seek per flush) instead of
        #: the clustered log + Waldo pipeline.
        self.passv1_direct_db = False
        # Statistics.
        self.stack_pages_copied = 0
        self.data_writes = 0
        # WAP log bytes/flushes and the stackable-copy tax, per volume
        # (harvested at snapshot time; the write path stays bare).
        obs.add_collector("lasagna", self._obs_counters,
                          volume=volume.name)
        for log in self.shard_logs:
            # At shards=1 the single log reports under the volume name
            # exactly as before; sharded logs carry shard-suffixed
            # volume labels (``pass/s0``...), see docs/OBSERVABILITY.md.
            obs.add_collector("lasagna", log.obs_counters,
                              volume=log.volume_name)

    def _obs_counters(self) -> dict:
        return {
            "stack_pages_copied": self.stack_pages_copied,
            "data_writes": self.data_writes,
        }

    # -- log plumbing ----------------------------------------------------------------

    def _log_disk_write(self, nbytes: int) -> None:
        """Append ``nbytes`` to the volume's provenance-log region.

        Log appends are clustered write-back I/O, but each flush is an
        ordering point (provenance must land *before* the data it
        describes), which charges the WAP barrier -- the interference
        mechanism behind the paper's Table 2 elapsed-time overheads.
        """
        region = self.volume.provlog_region
        blocks = max(1, -(-nbytes // self.volume.block_size))
        first = region.allocate(blocks)
        if self.passv1_direct_db:
            # PASSv1 regression: indexed B-tree writes, random placement,
            # no batching -- a full seek per flush plus index update I/O.
            self.volume.disk.write(first, nbytes * 2)
            return
        barrier = 0.0 if self._waive_barrier else (
            self.volume.disk.params.wap_barrier)
        self.volume.disk.clustered_write(nbytes, barrier=barrier)

    def append_provenance(self, bundle: Bundle) -> None:
        """Buffer records ahead of dependent data.

        Accepts a :class:`Bundle` (the per-record legacy path) or a
        :class:`RecordBatch` (the batched ingest path, which defers
        encoding and may group-commit inside ``append_batch``).
        """
        cost = self.params.cpu.log_encode * len(bundle)
        if cost:
            self.volume.clock.advance(cost, "provenance_cpu")
        if isinstance(bundle, RecordBatch):
            self.obs.observe("lasagna", "batch_size", len(bundle),
                             volume=self.volume.name)
            if self.shards == 1:
                self.log.append_batch(bundle.records)
                return
            # Split by subject shard, preserving order within each
            # bucket (and therefore within each subject: all of a
            # subject's records hash to the same shard).
            count = self.shards
            buckets: list[list] = [[] for _ in range(count)]
            for record in bundle.records:
                buckets[shard_of(record.subject.pnode, count)].append(
                    record)
            for log, bucket in zip(self.shard_logs, buckets):
                if bucket:
                    log.append_batch(bucket)
            return
        if self.shards == 1:
            for record in bundle:
                self.log.append(record)
            return
        logs = self.shard_logs
        count = self.shards
        for record in bundle:
            logs[shard_of(record.subject.pnode, count)].append(record)

    def sync(self) -> None:
        """Flush every shard log, rotate it, and let Waldo drain it."""
        with self.obs.span("lasagna.sync", layer="lasagna",
                           volume=self.volume.name):
            for log in self.shard_logs:
                log.flush()
                log.rotate()

    def flush_buffered(self) -> None:
        """Flush any shard log holding buffered records (the journal's
        ordered-mode coupling: metadata commits force pending
        provenance out first)."""
        for log in self.shard_logs:
            if log.buffered_records:
                log.flush()

    # -- stackable data path -----------------------------------------------------------

    def _stack_cost(self, nbytes: int) -> None:
        pages = max(1, -(-nbytes // self.volume.block_size))
        self.stack_pages_copied += pages
        cost = pages * self.params.cache.stack_copy_cost
        self.volume.clock.advance(cost, "stack_copy")

    def write_bytes(self, inode: Inode, offset: int, data: Optional[bytes],
                    length: Optional[int] = None) -> int:
        """The DPAPI pass_write data path: WAP flush, then the write."""
        nbytes = len(data) if data is not None else (length or 0)
        # Record the data checksum with the provenance (recovery evidence),
        # then make all of it durable before the data itself (WAP).  For
        # large writes the ordering point hides inside the multi-block
        # transfer, so the barrier latency is waived.
        digest = data_digest(data, nbytes)
        subject_log = (self.log if self.shards == 1 else
                       self.shard_logs[shard_of(inode.pnode, self.shards)])
        subject_log.append(ProvenanceRecord(
            inode.ref(), Attr.MD5, md5_value(offset, nbytes, digest),
        ))
        self._waive_barrier = nbytes >= 65536
        try:
            if self.shards > 1:
                # WAP spans objects: ancestors' records may sit in other
                # shards' buffers (the distributor flushed them to us
                # first), so every shard goes durable before the data.
                # One ordering point per data write: the other shards
                # ride the clustered queue barrier-free, the subject's
                # shard pays the barrier (exactly the single-log cost).
                waived = self._waive_barrier
                self._waive_barrier = True
                for log in self.shard_logs:
                    if log is not subject_log and log.buffered_records:
                        log.flush()
                self._waive_barrier = waived
            subject_log.flush(txn_subject=inode.ref())
        finally:
            self._waive_barrier = False
        if self.fail_before_data_write:
            raise CrashPoint(
                f"injected crash before data write to inode {inode.ino}"
            )
        if self._faults is not None:
            # The canonical WAP window: provenance durable, data not.
            self._faults.fire("lasagna.write.pre_data",
                              pnode=inode.pnode, offset=offset,
                              nbytes=nbytes)
        self._stack_cost(nbytes)
        self.data_writes += 1
        written = self.volume.write_bytes(inode, offset, data, length)
        if self._faults is not None:
            # Ground truth for the WAP checker: this write completed,
            # so its provenance must survive recovery (or be flagged).
            self._faults.fire("lasagna.write.post_data",
                              pnode=inode.pnode, offset=offset,
                              nbytes=nbytes)
        return written

    def read_bytes(self, inode: Inode, offset: int, length: int) -> bytes:
        """Read through the stack (upper-cache copy cost applies)."""
        data = self.volume.read_bytes(inode, offset, length)
        self._stack_cost(len(data))
        return data

    def truncate(self, inode: Inode, size: int) -> None:
        """Pass-through metadata operation."""
        self.volume.truncate(inode, size)

    # -- crash simulation -----------------------------------------------------------------

    def crash(self, drop_tail_bytes: int = 0) -> int:
        """Machine crash: unflushed provenance is lost across every
        shard; an optional torn tail applies to shard 0 (the only shard
        at the default topology).  Returns lost record count."""
        self.fail_before_data_write = False
        lost = self.log.crash(drop_tail_bytes)
        for log in self.shard_logs[1:]:
            lost += log.crash()
        return lost

    def __repr__(self) -> str:
        return f"<Lasagna over {self.volume.name}>"
