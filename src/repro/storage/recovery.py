"""Crash recovery for the write-ahead provenance log (section 5.6).

After a crash, the log is the truth.  Recovery:

1. re-decodes every segment from raw bytes (a torn tail -- a crash in
   the middle of a sector write -- parses as far as it goes and the
   remainder is dropped);
2. separates *committed* transactions (BEGINTXN..ENDTXN both present)
   from *orphaned* ones, whose records are discarded -- this is how a
   dead NFS client's half-sent provenance disappears;
3. verifies every committed MD5 record against the bytes actually in
   the file: a mismatch identifies "precisely the data that was being
   written to disk at the time of a crash".

The WAP invariant this enforces: data may exist whose provenance is
flagged inconsistent, but no *unflagged* data lacks provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord
from repro.storage import codec
from repro.storage.lasagna import Lasagna
from repro.storage.log import data_digest, md5_unpack


@dataclass
class RecoveryReport:
    """Outcome of one recovery pass."""

    committed_records: list[ProvenanceRecord] = field(default_factory=list)
    orphaned_records: list[ProvenanceRecord] = field(default_factory=list)
    #: (ref, offset, length): committed provenance whose data checksum
    #: does not match what is in the file -- in-flight at crash time.
    inconsistent_data: list[tuple[ObjectRef, int, int]] = field(
        default_factory=list)
    torn_bytes: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing was orphaned or inconsistent."""
        return not self.orphaned_records and not self.inconsistent_data


def recover(lasagna: Lasagna, database=None, consume: bool = False,
            log=None) -> RecoveryReport:
    """Replay a volume's provenance log after a crash.

    Committed records are optionally inserted into ``database`` (pass
    Waldo's database to rebuild it); the report lists orphans and any
    data whose checksum proves it was mid-write.

    ``log`` selects one shard log of a sharded volume (defaults to
    ``lasagna.log``, which IS the volume's only log unsharded); the
    storage tier replays each shard against its own database and merges
    the reports.

    With ``consume=True`` the log is reset after the replay (the
    recovered records now live in the database), which makes recovery
    idempotent: a second pass reports clean and inserts nothing.  The
    default leaves the log untouched (report-only inspection).
    """
    report = RecoveryReport()
    volume = lasagna.volume
    if log is None:
        log = lasagna.log

    for segment in log.all_segments():
        raw = bytes(segment.raw)
        decoded = list(codec.decode_stream(raw))
        consumed = _bytes_consumed(decoded)
        report.torn_bytes += len(raw) - consumed
        _replay(decoded, report)

    for record in report.committed_records:
        if record.attr == Attr.MD5 and isinstance(record.value, bytes):
            _verify_md5(volume, record, report)

    if database is not None:
        for record in report.committed_records:
            database.insert(record)
    if consume:
        log.reset_after_recovery()
    # Recovery is rare and diagnosis-critical: journal it unsampled so
    # a crashtest failure can be read back replay by replay.
    lasagna.obs.event(
        "recovery.replay", layer="waldo", volume=volume.name,
        always=True, committed=len(report.committed_records),
        orphaned=len(report.orphaned_records),
        inconsistent=len(report.inconsistent_data),
        torn_bytes=report.torn_bytes, consumed=consume,
        inserted=database is not None)
    return report


def _bytes_consumed(records: list[ProvenanceRecord]) -> int:
    return sum(codec.encoded_size(record) for record in records)


def _replay(records: list[ProvenanceRecord], report: RecoveryReport) -> None:
    open_txns: dict[int, list[ProvenanceRecord]] = {}
    current: Optional[int] = None
    for record in records:
        if record.attr == Attr.BEGINTXN:
            current = int(record.value)
            open_txns[current] = []
        elif record.attr == Attr.ENDTXN:
            txn = int(record.value)
            report.committed_records.extend(open_txns.pop(txn, ()))
            if current == txn:
                current = None
        elif current is not None:
            open_txns[current].append(record)
        else:
            report.committed_records.append(record)
    for batch in open_txns.values():
        report.orphaned_records.extend(batch)


def _verify_md5(volume, record: ProvenanceRecord,
                report: RecoveryReport) -> None:
    offset, length, digest = md5_unpack(record.value)
    inode = _find_inode(volume, record.subject.pnode)
    if inode is None:
        # The file is gone entirely; its last write clearly never
        # became ordinary durable state.
        report.inconsistent_data.append((record.subject, offset, length))
        return
    actual = inode.data.read(offset, length)
    if len(actual) < length:
        actual = actual + b"\x00" * (length - len(actual))
    if data_digest(actual, length) != digest:
        report.inconsistent_data.append((record.subject, offset, length))


def _find_inode(volume, pnode: int):
    for inode in volume.live_inodes():
        if inode.pnode == pnode:
            return inode
    return None
