"""The indexed provenance database Waldo maintains.

The paper stores provenance in (Berkeley-DB style) databases with
indexes; the space-overhead evaluation (Table 3) reports the database
size and the database-plus-indexes size separately.  This implementation
keeps the same accounting: every inserted record adds its encoded length
to the main-store size, and every index entry adds a documented
per-entry cost to the index size.

Indexes maintained (mirroring what the PQL evaluator needs):

* **attribute index** -- attribute name -> subject refs;
* **name index**      -- NAME value -> subject refs (file name lookup);
* **cross-reference index** -- referenced object -> (subject, attr)
  pairs, i.e. the reverse edges used by descendant traversals.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord
from repro.storage import codec

#: Approximate on-disk bytes per index entry (key pointer + record id),
#: matching a B-tree leaf entry of a small key plus an 8-byte locator.
ATTR_INDEX_ENTRY_BYTES = 20
NAME_INDEX_BASE_BYTES = 16          # plus the key string itself
XREF_INDEX_ENTRY_BYTES = 28


class ProvenanceDatabase:
    """In-memory indexed record store with honest size accounting."""

    def __init__(self, name: str = "provenance"):
        self.name = name
        self._records: dict[int, list[ProvenanceRecord]] = defaultdict(list)
        self._by_attr: dict[str, list[ObjectRef]] = defaultdict(list)
        self._by_name: dict[str, list[ObjectRef]] = defaultdict(list)
        self._by_xref: dict[ObjectRef, list[tuple[ObjectRef, str]]] = (
            defaultdict(list))
        self._max_version: dict[int, int] = {}
        self.record_count = 0
        self._main_bytes = 0
        #: Records inserted by bulk drains whose encoded size has not
        #: been folded into ``_main_bytes`` yet (see ``main_bytes``).
        self._unsized: list[ProvenanceRecord] = []
        self.index_bytes = 0
        self._listeners: list = []
        self._batch_listeners: list = []

    # -- writes ------------------------------------------------------------------

    def _ingest(self, record: ProvenanceRecord) -> None:
        """Index one record (no listener notification)."""
        subject = record.subject
        self._records[subject.pnode].append(record)
        self.record_count += 1
        self._main_bytes += codec.encoded_size(record)
        previous = self._max_version.get(subject.pnode, -1)
        if subject.version > previous:
            self._max_version[subject.pnode] = subject.version

        self._by_attr[record.attr].append(subject)
        self.index_bytes += ATTR_INDEX_ENTRY_BYTES
        if record.attr == Attr.NAME and isinstance(record.value, str):
            self._by_name[record.value].append(subject)
            self.index_bytes += NAME_INDEX_BASE_BYTES + len(record.value)
        if isinstance(record.value, ObjectRef):
            self._by_xref[record.value].append((subject, record.attr))
            self.index_bytes += XREF_INDEX_ENTRY_BYTES

    def insert(self, record: ProvenanceRecord) -> None:
        """Add one record and maintain every index."""
        self._ingest(record)
        for listener in self._listeners:
            listener(record)
        if self._batch_listeners:
            batch = (record,)
            for listener in self._batch_listeners:
                listener(batch)

    def subscribe(self, listener) -> None:
        """Register a callable invoked with every inserted record.

        This is the push feed live query engines ride: the graph
        *receives* records as Waldo ingests them, it never reaches back
        into storage to pull (lint rule PL210).  Recovery replay goes
        through :meth:`insert` too, so subscribers stay correct across
        crash/recover cycles.
        """
        self._listeners.append(listener)

    def subscribe_batch(self, listener) -> None:
        """Register a callable invoked with each inserted record *group*.

        The batched flavour of :meth:`subscribe`: ``insert_many`` hands
        the whole sequence over in one call, and single ``insert`` calls
        arrive as 1-tuples, so a batch subscriber sees every record
        exactly once, in insertion order, whichever write path ran.
        """
        self._batch_listeners.append(listener)

    def unsubscribe(self, listener) -> bool:
        """Remove one per-record listener; True if it was registered.

        Query engines with bounded lifetimes (benchmark arms, EXPLAIN
        scratch engines) detach instead of riding the feed forever --
        otherwise every insert keeps paying for graphs nobody queries.
        """
        try:
            self._listeners.remove(listener)
            return True
        except ValueError:
            return False

    def unsubscribe_batch(self, listener) -> bool:
        """Remove one batch listener; True if it was registered."""
        try:
            self._batch_listeners.remove(listener)
            return True
        except ValueError:
            return False

    @property
    def has_subscribers(self) -> bool:
        """Whether any push-feed listener is registered.  Concurrent
        shard drains only need to serialize their inserts when a
        listener exists -- listeners may share one federated OEM
        graph; a subscriber-free database is touched by its own drain
        alone."""
        return bool(self._listeners or self._batch_listeners)

    def insert_many(self, records: Iterable[ProvenanceRecord]) -> int:
        """Insert a batch; returns how many records were added.

        One vectorized indexing pass -- the loop body mirrors
        :meth:`_ingest` with every instance lookup hoisted and the size
        counters accumulated locally; per-record subscribers are then
        replayed in order and batch subscribers notified once.
        """
        if not isinstance(records, (list, tuple)):
            records = list(records)
        by_pnode = self._records
        by_attr = self._by_attr
        by_name = self._by_name
        by_xref = self._by_xref
        max_version = self._max_version
        name_attr = Attr.NAME
        index_bytes = 0
        # Drained batches arrive as runs of records about one subject
        # (the analyzer resolves refs per run); the pnode list and the
        # version high-water check are re-derived only when the subject
        # *instance* changes -- a same-pnode version change always comes
        # as a different ObjectRef instance.
        last_subject = None
        plist: Optional[list] = None
        for record in records:
            subject = record.subject
            if subject is not last_subject:
                last_subject = subject
                pnode = subject.pnode
                plist = by_pnode[pnode]
                if subject.version > max_version.get(pnode, -1):
                    max_version[pnode] = subject.version
            plist.append(record)
            attr = record.attr
            value = record.value
            by_attr[attr].append(subject)
            index_bytes += ATTR_INDEX_ENTRY_BYTES
            if attr == name_attr and isinstance(value, str):
                by_name[value].append(subject)
                index_bytes += NAME_INDEX_BASE_BYTES + len(value)
            if isinstance(value, ObjectRef):
                by_xref[value].append((subject, attr))
                index_bytes += XREF_INDEX_ENTRY_BYTES
        self.record_count += len(records)
        # Main-store size accounting is deferred: sizes are pure
        # functions of the records, so the ``main_bytes`` read folds
        # them in later instead of this loop paying per record.
        self._unsized.extend(records)
        self.index_bytes += index_bytes
        if records:
            if self._listeners:
                for record in records:
                    for listener in self._listeners:
                        listener(record)
            for listener in self._batch_listeners:
                listener(records)
        return len(records)

    # -- reads ---------------------------------------------------------------------

    @property
    def main_bytes(self) -> int:
        """Encoded bytes of the main store.

        Bulk drains defer per-record size accounting (the hot path adds
        nothing); the first read folds the deferred records in, so the
        value is always exact when observed.
        """
        pending = self._unsized
        if pending:
            sizer = codec.encoded_size
            total = 0
            for record in pending:
                total += sizer(record)
            self._main_bytes += total
            self._unsized = []
        return self._main_bytes

    def pnodes(self) -> list[int]:
        """Every pnode with at least one record."""
        return list(self._records)

    def records_of(self, pnode: int) -> list[ProvenanceRecord]:
        """All records for all versions of one object."""
        return list(self._records.get(pnode, ()))

    def records_of_version(self, ref: ObjectRef) -> list[ProvenanceRecord]:
        """Records describing one specific version."""
        return [record for record in self._records.get(ref.pnode, ())
                if record.subject.version == ref.version]

    def max_version(self, pnode: int) -> Optional[int]:
        """Latest version number seen for an object, or None."""
        return self._max_version.get(pnode)

    def attribute_values(self, ref: ObjectRef, attr: str) -> list:
        """Values of one attribute on one version (possibly several)."""
        return [record.value for record in self._records.get(ref.pnode, ())
                if record.subject.version == ref.version
                and record.attr == attr]

    def subjects_with_attr(self, attr: str) -> list[ObjectRef]:
        """Subject refs carrying an attribute (attribute index)."""
        return list(self._by_attr.get(attr, ()))

    def find_by_name(self, name: str) -> list[ObjectRef]:
        """Subject refs whose NAME equals ``name`` (name index)."""
        return list(self._by_name.get(name, ()))

    def ancestors(self, ref: ObjectRef,
                  attrs: frozenset = Attr.ANCESTRY_ATTRS) -> list[ObjectRef]:
        """Direct ancestors of one version (forward edges)."""
        return [record.value for record in self.records_of_version(ref)
                if record.attr in attrs and isinstance(record.value, ObjectRef)]

    def descendants(self, ref: ObjectRef,
                    attrs: frozenset = Attr.ANCESTRY_ATTRS
                    ) -> list[ObjectRef]:
        """Direct descendants of one version (cross-reference index)."""
        return [subject for subject, attr in self._by_xref.get(ref, ())
                if attr in attrs]

    def referencing(self, ref: ObjectRef) -> list[tuple[ObjectRef, str]]:
        """Every (subject, attr) pair whose value references ``ref``."""
        return list(self._by_xref.get(ref, ()))

    def all_records(self) -> Iterable[ProvenanceRecord]:
        """Stream every record (graph construction)."""
        for records in self._records.values():
            yield from records

    # -- serialization -------------------------------------------------------------------

    #: File magic for exported databases.
    MAGIC = b"PASSDB1\n"

    def to_bytes(self) -> bytes:
        """Serialize the whole database (indexes are derived state and
        are rebuilt on load)."""
        chunks = [self.MAGIC]
        for records in self._records.values():
            chunks.extend(codec.encode_record(record)
                          for record in records)
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, blob: bytes,
                   name: str = "provenance") -> "ProvenanceDatabase":
        """Rebuild a database (and all indexes) from :meth:`to_bytes`."""
        if not blob.startswith(cls.MAGIC):
            from repro.core.errors import LogCorruption
            raise LogCorruption("not a PASS provenance database export")
        database = cls(name)
        payload = blob[len(cls.MAGIC):]
        count = 0
        for record in codec.decode_stream(payload):
            database.insert(record)
            count += 1
        consumed = sum(codec.encoded_size(record)
                       for record in database.all_records())
        if consumed != len(payload):
            from repro.core.errors import LogCorruption
            raise LogCorruption(
                f"database export truncated after {count} records")
        return database

    def save(self, path: str) -> int:
        """Write the export to a host file; returns bytes written."""
        blob = self.to_bytes()
        with open(path, "wb") as handle:
            handle.write(blob)
        return len(blob)

    @classmethod
    def load(cls, path: str,
             name: str = "provenance") -> "ProvenanceDatabase":
        """Read an export from a host file."""
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read(), name)

    # -- space accounting (Table 3) -----------------------------------------------------

    def sizes(self) -> dict[str, int]:
        """Byte sizes: main store, indexes, and their sum."""
        return {
            "database": self.main_bytes,
            "indexes": self.index_bytes,
            "total": self.main_bytes + self.index_bytes,
        }

    def __len__(self) -> int:
        return self.record_count

    def __repr__(self) -> str:
        return (f"<ProvenanceDatabase {self.name}: {self.record_count} "
                f"records, {self.main_bytes + self.index_bytes} bytes>")
