"""Waldo: the user-level daemon draining logs into the database.

Waldo watches for closed log segments (the paper uses Linux inotify;
here the log calls us back), validates the transactional framing, and
inserts committed records into the provenance database.  Records inside
a transaction that never saw its ENDTXN are *orphaned* -- a client or
machine died mid-write -- and are kept aside rather than entering the
database, exactly the recovery behaviour the NFS transaction design was
built for (section 6.1.2).

Waldo also serves reads: the query engine goes through Waldo rather
than touching the database directly.
"""

from __future__ import annotations

from typing import Optional

from repro.core.records import Attr, ProvenanceRecord
from repro.obs import NULL_OBS
from repro.storage.database import ProvenanceDatabase
from repro.storage.log import LogSegment, ProvenanceLog


class Waldo:
    """One Waldo daemon per PASS volume."""

    def __init__(self, log: ProvenanceLog,
                 database: Optional[ProvenanceDatabase] = None,
                 name: str = "waldo", obs=NULL_OBS, faults=None,
                 batching: bool = True):
        self.log = log
        self.database = database or ProvenanceDatabase(name)
        self.name = name
        self.obs = obs
        #: Bulk drain: each segment's committed records reach the
        #: database as one ``insert_many`` call (off = per-record
        #: inserts, the legacy arm of the ingest benchmark).
        self.batching = batching
        #: Fault injector (repro.faults); None keeps drain() bare.
        self._faults = faults
        #: Records discarded because their transaction never committed.
        self.orphaned: list[ProvenanceRecord] = []
        self.segments_processed = 0
        self.records_inserted = 0
        self.drains = 0
        log.on_segment_closed = self._segment_closed
        self._pending_segments: list[LogSegment] = []
        self._engine = None
        obs.add_collector("waldo", self._obs_counters, volume=name)

    def _obs_counters(self) -> dict:
        return {
            "records_inserted": self.records_inserted,
            "segments_processed": self.segments_processed,
            "drains": self.drains,
            "orphaned_records": len(self.orphaned),
            "database_records": len(self.database),
        }

    # -- log watching -------------------------------------------------------------

    def _segment_closed(self, segment: LogSegment) -> None:
        """inotify stand-in: queue the segment for processing."""
        self._pending_segments.append(segment)

    def drain(self) -> int:
        """Process every queued closed segment; returns records inserted.

        Call :meth:`ProvenanceLog.rotate` (or Lasagna.sync) first if the
        current segment should be included.
        """
        inserted = 0
        segments = 0
        with self.obs.span("waldo.drain", layer="waldo",
                           volume=self.name) as span:
            self.log.take_closed()      # clear the log's own list
            while self._pending_segments:
                # Peek, process, then pop: a crash at the injection
                # site leaves the segment queued, so crash() can hand
                # it back to the log for recovery (no records lost,
                # none double-inserted -- _process is atomic).
                segment = self._pending_segments[0]
                if self._faults is not None:
                    self._faults.fire("waldo.drain.segment",
                                      segment=segment.index,
                                      records=len(segment.records))
                inserted += self._process(segment)
                self._pending_segments.pop(0)
                self.segments_processed += 1
                segments += 1
            span.tag("records", inserted)
            self.obs.event("waldo.drain", layer="waldo", volume=self.name,
                           records=inserted, segments=segments,
                           orphaned=len(self.orphaned))
        self.drains += 1
        self.records_inserted += inserted
        # Replay throughput: how many committed records one drain moved
        # into the database (percentiles over drains).
        self.obs.observe("waldo", "records_per_drain", inserted,
                         volume=self.name)
        return inserted

    def _process(self, segment: LogSegment) -> int:
        """Insert a segment's committed transactions into the database.

        The transaction walk first accumulates every record that is
        allowed into the database -- committed batches at their ENDTXN
        position, unframed records in place -- so insertion order is
        identical on both paths; the bulk path then makes it one
        ``insert_many`` call per segment.
        """
        ready: list[ProvenanceRecord] = []
        open_txns: dict[int, list[ProvenanceRecord]] = {}
        current_txn: Optional[int] = None
        for record in segment.records:
            if record.attr == Attr.BEGINTXN:
                current_txn = int(record.value)
                open_txns[current_txn] = []
                continue
            if record.attr == Attr.ENDTXN:
                txn = int(record.value)
                ready.extend(open_txns.pop(txn, ()))
                if current_txn == txn:
                    current_txn = None
                continue
            if current_txn is not None:
                open_txns[current_txn].append(record)
            else:
                # Unframed record (legacy path): straight in.
                ready.append(record)
        for batch in open_txns.values():
            self.orphaned.extend(batch)
        if not ready:
            return 0
        if self.batching:
            with self.obs.span("waldo.drain_batch", layer="waldo",
                               volume=self.name) as span:
                span.tag("records", len(ready))
                self.database.insert_many(ready)
        else:
            insert = self.database.insert
            for record in ready:
                insert(record)
        return len(ready)

    # -- crash simulation --------------------------------------------------------------

    def crash(self) -> int:
        """The daemon died: requeue undrained segments onto the log.

        Segments Waldo took (via ``take_closed``) but had not yet
        ingested go back to ``log.closed_segments`` so recovery sees
        them; already-ingested segments are safely in the database.
        Returns the number of segments handed back.
        """
        pending, self._pending_segments = self._pending_segments, []
        merged = {id(seg): seg for seg in [*pending,
                                           *self.log.closed_segments]}
        self.log.closed_segments = sorted(merged.values(),
                                          key=lambda seg: seg.index)
        return len(pending)

    # -- query service -----------------------------------------------------------------

    def query_engine(self):
        """The single live PQL engine over this Waldo's database:
        'Waldo is also responsible for accessing the database on behalf
        of the query engine' (section 5.1).

        Built once, then kept current by the database's push feed --
        every record a drain (or recovery replay) inserts is spliced
        into the engine's OEM graph, so repeated calls return the same
        object and never re-scan the database.
        """
        if self._engine is None:
            from repro.pql.engine import QueryEngine
            self._engine = QueryEngine.live([self.database], obs=self.obs)
        return self._engine

    def query(self, text: str) -> list:
        """Run one PQL query against this volume's provenance."""
        return self.query_engine().execute(text)

    def sizes(self) -> dict[str, int]:
        """Database / index byte sizes (Table 3)."""
        return self.database.sizes()

    def __repr__(self) -> str:
        return (f"<Waldo {self.name}: {len(self.database)} records, "
                f"{len(self.orphaned)} orphaned>")
