"""Waldo: the user-level daemon draining logs into the database.

Waldo watches for closed log segments (the paper uses Linux inotify;
here the log calls us back), validates the transactional framing, and
inserts committed records into the provenance database.  Records inside
a transaction that never saw its ENDTXN are *orphaned* -- a client or
machine died mid-write -- and are kept aside rather than entering the
database, exactly the recovery behaviour the NFS transaction design was
built for (section 6.1.2).

Waldo also serves reads: the query engine goes through Waldo rather
than touching the database directly.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.core.records import Attr, ProvenanceRecord
from repro.obs import NULL_OBS
from repro.storage.database import ProvenanceDatabase
from repro.storage.log import LogSegment, ProvenanceLog


class Waldo:
    """One Waldo daemon per shard log (one per PASS volume unsharded)."""

    def __init__(self, log: ProvenanceLog,
                 database: Optional[ProvenanceDatabase] = None,
                 name: str = "waldo", obs=NULL_OBS, faults=None,
                 batching: bool = True, insert_lock=None, archive=None):
        self.log = log
        self.database = database or ProvenanceDatabase(name)
        self.name = name
        self.obs = obs
        #: Bulk drain: each segment's committed records reach the
        #: database as one ``insert_many`` call (off = per-record
        #: inserts, the legacy arm of the ingest benchmark).
        self.batching = batching
        #: Fault injector (repro.faults); None keeps drain() bare.
        self._faults = faults
        #: Held around the database insert (and thus the push-feed
        #: fan-out into any live OEM graph) when the storage tier drains
        #: shards in parallel: the transaction walk runs concurrently,
        #: the merge into shared query state does not.  None (the
        #: single-shard default) keeps the path lock-free.
        self._insert_lock = insert_lock
        #: Optional :class:`repro.storage.tier.SegmentArchive` that
        #: retains drained segments (bounded by its compaction policy).
        self.archive = archive
        #: Records discarded because their transaction never committed.
        self.orphaned: list[ProvenanceRecord] = []
        self.segments_processed = 0
        self.records_inserted = 0
        self.drains = 0
        log.on_segment_closed = self._segment_closed
        self._pending_segments: list[LogSegment] = []
        self._engine = None
        obs.add_collector("waldo", self._obs_counters, volume=name)

    def _obs_counters(self) -> dict:
        return {
            "records_inserted": self.records_inserted,
            "segments_processed": self.segments_processed,
            "drains": self.drains,
            "orphaned_records": len(self.orphaned),
            "database_records": len(self.database),
        }

    # -- log watching -------------------------------------------------------------

    def _segment_closed(self, segment: LogSegment) -> None:
        """inotify stand-in: queue the segment for processing."""
        self._pending_segments.append(segment)

    @property
    def pending_segment_count(self) -> int:
        """Closed segments queued but not yet drained."""
        return len(self._pending_segments)

    def drain(self) -> int:
        """Process every queued closed segment; returns records inserted.

        Call :meth:`ProvenanceLog.rotate` (or Lasagna.sync) first if the
        current segment should be included.
        """
        inserted = 0
        segments = 0
        with self.obs.span("waldo.drain", layer="waldo",
                           volume=self.name) as span:
            self.log.take_closed()      # clear the log's own list
            while self._pending_segments:
                # Peek, process, then pop: a crash at the injection
                # site leaves the segment queued, so crash() can hand
                # it back to the log for recovery (no records lost,
                # none double-inserted -- _process is atomic).
                segment = self._pending_segments[0]
                if self._faults is not None:
                    self._faults.fire("waldo.drain.segment",
                                      segment=segment.index,
                                      records=len(segment.records))
                inserted += self._process(segment)
                self._pending_segments.pop(0)
                self.segments_processed += 1
                segments += 1
                if self.archive is not None:
                    self.archive.add(segment)
            span.tag("records", inserted)
            self.obs.event("waldo.drain", layer="waldo", volume=self.name,
                           records=inserted, segments=segments,
                           orphaned=len(self.orphaned))
        self.drains += 1
        self.records_inserted += inserted
        # Replay throughput: how many committed records one drain moved
        # into the database (percentiles over drains).
        self.obs.observe("waldo", "records_per_drain", inserted,
                         volume=self.name)
        return inserted

    def _process(self, segment: LogSegment) -> int:
        """Insert a segment's committed transactions into the database.

        The transaction walk first accumulates every record that is
        allowed into the database -- committed batches at their ENDTXN
        position, unframed records in place -- so insertion order is
        identical on both paths; the bulk path then makes it one
        ``insert_many`` call per segment.
        """
        ready: list[ProvenanceRecord] = []
        open_txns: dict[int, list[ProvenanceRecord]] = {}
        current_txn: Optional[int] = None
        for record in segment.records:
            if record.attr == Attr.BEGINTXN:
                current_txn = int(record.value)
                open_txns[current_txn] = []
                continue
            if record.attr == Attr.ENDTXN:
                txn = int(record.value)
                ready.extend(open_txns.pop(txn, ()))
                if current_txn == txn:
                    current_txn = None
                continue
            if current_txn is not None:
                open_txns[current_txn].append(record)
            else:
                # Unframed record (legacy path): straight in.
                ready.append(record)
        for batch in open_txns.values():
            self.orphaned.extend(batch)
        if not ready:
            return 0
        # The insert lock serializes the push feed into the shared
        # federated OEM graph; with no subscribers the database is
        # private to this shard's drain and inserts run lock-free.
        lock = self._insert_lock
        if lock is not None and self.database.has_subscribers:
            with lock:
                self._insert(ready)
        else:
            self._insert(ready)
        return len(ready)

    def _insert(self, ready: list[ProvenanceRecord]) -> None:
        if self.batching:
            with self.obs.span("waldo.drain_batch", layer="waldo",
                               volume=self.name) as span:
                span.tag("records", len(ready))
                self.database.insert_many(ready)
        else:
            insert = self.database.insert
            for record in ready:
                insert(record)

    # -- crash simulation --------------------------------------------------------------

    def crash(self) -> int:
        """The daemon died: requeue undrained segments onto the log.

        Segments Waldo took (via ``take_closed``) but had not yet
        ingested go back to ``log.closed_segments`` so recovery sees
        them; already-ingested segments are safely in the database.
        Returns the number of segments handed back.
        """
        pending, self._pending_segments = self._pending_segments, []
        merged = {id(seg): seg for seg in [*pending,
                                           *self.log.closed_segments]}
        self.log.closed_segments = sorted(merged.values(),
                                          key=lambda seg: seg.index)
        return len(pending)

    # -- query service -----------------------------------------------------------------

    def query_engine(self):
        """Deprecated: a live PQL engine over this one shard's database.

        Under sharding a volume's provenance spans several databases;
        query through ``System.query_engine()`` (the tier's federated
        engine) instead.  Kept as a thin wrapper because 'Waldo is also
        responsible for accessing the database on behalf of the query
        engine' (section 5.1) was the original API.
        """
        warnings.warn(
            "Waldo.query_engine() is deprecated; use "
            "System.query_engine() (the StorageTier federated engine)",
            DeprecationWarning, stacklevel=2)
        return self._shard_engine()

    def _shard_engine(self):
        """The single live engine over this shard's database -- built
        once, then kept current by the database's push feed."""
        if self._engine is None:
            from repro.pql.engine import QueryEngine
            self._engine = QueryEngine.live([self.database], obs=self.obs)
        return self._engine

    def query(self, text: str) -> list:
        """Run one PQL query against this shard's provenance."""
        return self._shard_engine().execute(text)

    def sizes(self) -> dict[str, int]:
        """Database / index byte sizes (Table 3)."""
        return self.database.sizes()

    def __repr__(self) -> str:
        return (f"<Waldo {self.name}: {len(self.database)} records, "
                f"{len(self.orphaned)} orphaned>")
