"""The write-ahead provenance (WAP) log (section 5.6).

PASSv1 wrote provenance straight into databases; that was "neither
flexible nor scalable", so PASSv2 appends records to a log that Waldo
later drains into the database.  The log guarantees:

* **WAP ordering** -- all provenance records describing a block of data
  reach the disk before the data does (the caller, Lasagna, flushes the
  log before issuing the data write);
* **transactional framing** -- each flush is wrapped in BEGINTXN/ENDTXN
  records carrying a transaction id, and data writes contribute an MD5
  record, so recovery can discard orphaned provenance and identify data
  that was in flight during a crash;
* **rotation** -- when the log exceeds a maximum size or has been
  dormant too long, the kernel closes it and starts a new one; Waldo
  notices (the paper uses inotify; we use a callback) and processes the
  closed segment.
"""

from __future__ import annotations

import functools
import hashlib
import struct
from typing import Callable, Optional

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord, make_record
from repro.kernel.clock import SimClock
from repro.kernel.params import LogParams
from repro.obs import NULL_OBS
from repro.storage import codec

_MD5_META = struct.Struct(">QI")      # offset, length preceding the digest


#: Incremental MD5 states over all-zero prefixes, keyed by length, so a
#: hole digest costs only the delta from the nearest shorter prefix.
_ZERO_STATES: dict[int, "hashlib._Hash"] = {0: hashlib.md5()}
_ZERO_CHUNK = b"\x00" * 65536


@functools.lru_cache(maxsize=4096)
def _zero_digest(length: int) -> bytes:
    base = max(known for known in _ZERO_STATES if known <= length)
    state = _ZERO_STATES[base].copy()
    remaining = length - base
    while remaining > 0:
        step = min(remaining, len(_ZERO_CHUNK))
        state.update(_ZERO_CHUNK[:step])
        remaining -= step
    if length not in _ZERO_STATES and len(_ZERO_STATES) < 4096:
        # Idempotent content-keyed memo: every writer computes the same
        # state for a given length, so a lost or duplicated store under
        # concurrency costs time, never correctness.
        _ZERO_STATES[length] = state.copy()  # lint: disable=PL304
    return state.digest()


def data_digest(data: Optional[bytes], length: int) -> bytes:
    """MD5 of a written chunk; hole writes digest as the zeros they read
    back as, so recovery can verify either kind uniformly (the digest of
    an N-byte hole is cached -- it only depends on N)."""
    if data is None:
        return _zero_digest(length)
    return hashlib.md5(data).digest()


def md5_value(offset: int, length: int, digest: bytes) -> bytes:
    """Pack an MD5 record value: where the data lives plus its digest."""
    return _MD5_META.pack(offset, length) + digest


def md5_unpack(value: bytes) -> tuple[int, int, bytes]:
    """Unpack an MD5 record value into (offset, length, digest)."""
    offset, length = _MD5_META.unpack_from(value, 0)
    return offset, length, value[_MD5_META.size:]


class LogSegment:
    """One closed (or in-progress) log file."""

    def __init__(self, index: int):
        self.index = index
        self.raw = bytearray()
        self.records: list[ProvenanceRecord] = []
        self.closed = False

    @property
    def nbytes(self) -> int:
        return len(self.raw)

    def append(self, record: ProvenanceRecord, encoded: bytes) -> None:
        self.raw.extend(encoded)
        self.records.append(record)

    def append_batch(self, records: list, raw: bytes) -> None:
        """Append one flushed group: pre-joined bytes plus its records."""
        self.raw.extend(raw)
        self.records.extend(records)

    def truncate_tail(self, nbytes: int) -> None:
        """Crash simulation: drop the last ``nbytes`` of raw log."""
        if nbytes <= 0:
            return
        del self.raw[max(0, len(self.raw) - nbytes):]
        # Decoded record list no longer trustworthy; recovery re-decodes.
        self.records = list(codec.decode_stream(bytes(self.raw)))


class ProvenanceLog:
    """Per-volume provenance log with buffering and rotation."""

    def __init__(self, clock: SimClock, params: Optional[LogParams] = None,
                 disk_write: Optional[Callable[[int], None]] = None,
                 faults=None, obs=NULL_OBS, volume_name: str = "log"):
        self.clock = clock
        self.params = params or LogParams()
        #: Callable charging the disk for an append of N bytes; bound by
        #: Lasagna to the volume's provenance-log region.
        self._disk_write = disk_write or (lambda nbytes: None)
        #: Fault injector (repro.faults); None keeps flush() bare.
        self._faults = faults
        self.obs = obs
        self.volume_name = volume_name
        #: Buffered records, not yet durable.  Each record is encoded
        #: exactly once, at append time, through the memoized encoder;
        #: the raw chunks wait in ``_buffer_raw`` so a flush is a single
        #: join, and the running byte total -- the single source of
        #: truth for how much disk the next flush pays for -- is the sum
        #: of their lengths.
        self._buffer: list[ProvenanceRecord] = []
        self._buffer_raw: list[bytes] = []
        self._buffer_bytes = 0
        self._encoder = codec.RecordEncoder()
        self._next_txn = 1
        self._segment_index = 0
        self.current = LogSegment(self._segment_index)
        self.closed_segments: list[LogSegment] = []
        self._last_activity = clock.now
        #: Called with each closed segment (Waldo's inotify stand-in).
        self.on_segment_closed: Optional[Callable[[LogSegment], None]] = None
        # Statistics.
        self.records_logged = 0
        self.bytes_logged = 0
        self.flushes = 0
        self.txns_opened = 0
        self.rotations = 0
        self.batch_records = 0
        self.batch_flushes = 0
        #: Opt-in wall-clock accounting (set to ``time.perf_counter`` to
        #: enable).  ``wall_seconds`` then accumulates real time spent in
        #: ``append_batch``/``flush`` -- the work a per-shard storage
        #: worker would own -- measured at the outermost entry only, so
        #: a group commit inside ``append_batch`` is not double-counted.
        self.wall_clock: Optional[Callable[[], float]] = None
        self.wall_seconds = 0.0
        self._wall_depth = 0

    def obs_counters(self) -> dict:
        """WAP log totals, harvested by the observability layer (the
        owning Lasagna registers this under its volume)."""
        return {
            "log_records": self.records_logged,
            "log_bytes": self.bytes_logged,
            "log_flushes": self.flushes,
            "txns_opened": self.txns_opened,
            "rotations": self.rotations,
            "buffered_records": len(self._buffer),
            "batch_records": self.batch_records,
            "batch_flushes": self.batch_flushes,
        }

    # -- buffering --------------------------------------------------------------

    def append(self, record: ProvenanceRecord) -> None:
        """Buffer one record (not yet durable)."""
        raw = self._encoder.encode(record)
        self._buffer.append(record)
        self._buffer_raw.append(raw)
        self._buffer_bytes += len(raw)

    def append_batch(self, records) -> None:
        """Buffer a batch of records and group-commit past thresholds.

        The batched ingest entry point: each record is encoded once,
        here, and when the buffer crosses
        ``LogParams.group_commit_records`` / ``group_commit_bytes`` the
        whole group is flushed as one transaction.  A threshold flush is
        strictly *earlier* than the next WAP ordering point (the data
        write or sync that would have forced it), so group commit can
        never weaken write-ahead provenance.
        """
        clock = self.wall_clock
        if clock is not None and self._wall_depth == 0:
            self._wall_depth += 1
            started = clock()
            try:
                self._append_batch(records)
            finally:
                self._wall_depth -= 1
                self.wall_seconds += clock() - started
            return
        self._append_batch(records)

    def _append_batch(self, records) -> None:
        raws = self._encoder.encode_list(records)
        buffer = self._buffer
        buffer.extend(records)
        self._buffer_raw.extend(raws)
        size = self._buffer_bytes + sum(map(len, raws))
        self._buffer_bytes = size
        self.batch_records += len(raws)
        params = self.params
        if ((params.group_commit_records
                and len(buffer) >= params.group_commit_records)
                or (params.group_commit_bytes
                    and size >= params.group_commit_bytes)):
            self.batch_flushes += 1
            with self.obs.span("log.group_commit", layer="lasagna",
                               volume=self.volume_name) as span:
                span.tag("records", len(buffer))
                self.obs.event("log.group_commit", layer="lasagna",
                               volume=self.volume_name,
                               records=len(buffer), nbytes=size,
                               txn=self._next_txn)
                self.flush()

    @property
    def buffered_records(self) -> int:
        return len(self._buffer)

    def next_txn_id(self) -> int:
        txn = self._next_txn
        self._next_txn += 1
        self.txns_opened += 1
        return txn

    # -- durability ----------------------------------------------------------------

    def flush(self, txn_subject: Optional[ObjectRef] = None) -> Optional[int]:
        """Write buffered records to disk, framed as one transaction.

        ``txn_subject`` labels the BEGINTXN/ENDTXN records (the file the
        flush precedes); when the buffer is empty nothing is written and
        None is returned, else the transaction id.
        """
        clock = self.wall_clock
        if clock is not None and self._wall_depth == 0:
            self._wall_depth += 1
            started = clock()
            try:
                return self._flush(txn_subject)
            finally:
                self._wall_depth -= 1
                self.wall_seconds += clock() - started
        return self._flush(txn_subject)

    def _flush(self, txn_subject: Optional[ObjectRef] = None
               ) -> Optional[int]:
        if not self._buffer:
            return None
        faults = self._faults
        if faults is not None:
            # Crashing here loses the whole buffer: never durable.
            faults.fire("log.flush.pre", records=len(self._buffer))
        txn = self.next_txn_id()
        subject = txn_subject or self._buffer[0].subject
        frame_open = make_record(subject, Attr.BEGINTXN, txn)
        frame_close = make_record(subject, Attr.ENDTXN, txn)
        encode = self._encoder.encode
        open_raw = encode(frame_open)
        close_raw = encode(frame_close)
        batch = [frame_open, *self._buffer, frame_close]
        # One byte counter: the buffered payload was encoded (and sized)
        # on append, so the disk charge is that counter plus the two
        # frames, and the write itself is one join of the ready chunks.
        nbytes = self._buffer_bytes + len(open_raw) + len(close_raw)
        raw = b"".join([open_raw, *self._buffer_raw, close_raw])
        self._buffer = []
        self._buffer_raw = []
        self._buffer_bytes = 0

        self._disk_write(nbytes)
        if faults is not None:
            action = faults.fire("log.flush.append", nbytes=nbytes, txn=txn)
            if action is not None and action.kind == "torn":
                # The batch reached the disk queue; a mid-sector crash
                # tears its tail off, cutting into the ENDTXN record so
                # recovery sees an orphaned transaction.
                self.current.append_batch(batch, raw)
                tear = max(1, min(nbytes - 1, int(nbytes * action.param)))
                self.current.truncate_tail(tear)
                from repro.faults import CrashFault
                raise faults.halt(CrashFault(
                    f"torn log append: {tear} of {nbytes} bytes lost "
                    f"(txn {txn})", site=action.site, hit=action.hit,
                    torn_bytes=tear))
        self.current.append_batch(batch, raw)
        self.records_logged += len(batch)
        self.bytes_logged += nbytes
        self.flushes += 1
        self._last_activity = self.clock.now
        if faults is not None:
            faults.fire("log.flush.post", txn=txn)
        self._maybe_rotate()
        return txn

    def _maybe_rotate(self) -> None:
        if self.current.nbytes >= self.params.max_size:
            self.rotate()

    def tick(self) -> None:
        """Dormancy check (the kernel's periodic timer)."""
        if (self.current.nbytes
                and self.clock.now - self._last_activity >= self.params.dormancy):
            self.rotate()

    def rotate(self) -> Optional[LogSegment]:
        """Close the current log file and start a new one."""
        if not self.current.nbytes:
            return None
        segment = self.current
        segment.closed = True
        self.closed_segments.append(segment)
        self.rotations += 1
        self._segment_index += 1
        self.current = LogSegment(self._segment_index)
        if self.on_segment_closed is not None:
            self.on_segment_closed(segment)
        return segment

    def take_closed(self) -> list[LogSegment]:
        """Hand all closed segments to the caller (Waldo), removing them."""
        segments, self.closed_segments = self.closed_segments, []
        return segments

    # -- crash simulation --------------------------------------------------------------

    def crash(self, drop_tail_bytes: int = 0) -> int:
        """Simulate a machine crash.

        Buffered (unflushed) records are lost; optionally the tail of the
        current on-disk segment is torn (an in-flight sector).  Returns
        the number of buffered records that were lost.
        """
        lost = len(self._buffer)
        self._buffer = []
        self._buffer_raw = []
        self._buffer_bytes = 0
        if drop_tail_bytes:
            self.current.truncate_tail(drop_tail_bytes)
        return lost

    def all_segments(self) -> list[LogSegment]:
        """Closed segments plus the current one (recovery scans all)."""
        return [*self.closed_segments, self.current]

    def reset_after_recovery(self) -> None:
        """Consume the log after a recovery replay: every surviving
        record is now in the database, so the on-disk segments are
        deleted and a fresh one opened.  This is what makes a second
        ``recover(consume=True)`` pass a no-op (idempotence)."""
        self.closed_segments = []
        self._segment_index += 1
        self.current = LogSegment(self._segment_index)
        self._buffer = []
        self._buffer_raw = []
        self._buffer_bytes = 0
