"""The storage tier: every PASS volume's sharded WAP pipeline, one facade.

The paper's layering deliberately decouples capture (observer /
analyzer / distributor) from storage (Lasagna / Waldo), but one WAP
log, one Waldo drain, and one ProvenanceDatabase per volume still
serialize every record through a single writer.  :class:`StorageTier`
removes that bottleneck without touching the capture layers:

* each PASS volume's log is split into ``shards`` intra-volume shard
  logs; records route by subject-pnode hash (all of a subject's records
  land -- ordered -- in one shard);
* each shard log gets its own Waldo and ProvenanceDatabase, so drains
  are independent per shard and run concurrently (a thread pool over
  the existing group-commit segments) when no fault injector, tracer,
  or journal needs deterministic serial order;
* queries federate at the query layer: :meth:`federated_sources` hands
  the union of every shard database to ``QueryEngine.live``, whose OEM
  graph is arrival-order-insensitive -- the merged live graph answers
  cross-shard joins exactly as the single-shard graph would;
* drained segments are archived per shard and compacted under a
  :class:`CompactionPolicy`, so the store survives months of churn with
  bounded memory.

``System.boot``, crashlab, the benchmarks, and the CLI all construct
storage through this facade; ``BootConfig.shards = 1`` (the default)
reproduces today's single-shard pipeline byte for byte.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs import NULL_OBS
from repro.storage import recovery
from repro.storage.database import ProvenanceDatabase
from repro.storage.lasagna import Lasagna
from repro.storage.log import LogSegment
from repro.storage.recovery import RecoveryReport
from repro.storage.waldo import Waldo

#: Supported intra-volume shard keys: ``pnode`` hashes the subject's
#: pnode number across ``shards`` shard logs; ``volume`` disables
#: intra-volume sharding (one shard per volume regardless of count).
SHARD_KEYS = ("pnode", "volume")


@dataclass(frozen=True)
class CompactionPolicy:
    """Bounds on each shard's drained-segment archive.

    Once either bound is exceeded the oldest archived segments are
    folded into :class:`CompactedExtent` summaries (index range, record
    and byte counts) and their raw bytes are reclaimed.
    """

    max_segments: int = 16
    max_bytes: int = 4 * 1024 * 1024


@dataclass
class CompactedExtent:
    """Summary left behind when archived segments are compacted away."""

    first_index: int
    last_index: int
    segments: int
    records: int
    nbytes: int


class SegmentArchive:
    """Drained log segments retained for one shard, bounded by policy.

    Waldo hands every segment here after ingesting it; the archive is
    forensic state (what the database was built from), not a
    correctness dependency -- compaction can always reclaim it.
    """

    def __init__(self, policy: Optional[CompactionPolicy] = None):
        self.policy = policy or CompactionPolicy()
        self.segments: list[LogSegment] = []
        self.extents: list[CompactedExtent] = []
        self.segments_archived = 0
        self.segments_compacted = 0
        self.bytes_reclaimed = 0

    @property
    def archived_bytes(self) -> int:
        return sum(segment.nbytes for segment in self.segments)

    def add(self, segment: LogSegment) -> None:
        """Archive one drained segment, then re-establish the bounds."""
        self.segments.append(segment)
        self.segments_archived += 1
        self.compact()

    def _over_policy(self) -> bool:
        return (len(self.segments) > self.policy.max_segments
                or self.archived_bytes > self.policy.max_bytes)

    def compact(self, force: bool = False) -> int:
        """Fold the oldest segments into summary extents until the
        archive is within policy (all of them when ``force``); returns
        the bytes reclaimed by this pass."""
        reclaimed = 0
        while self.segments and (force or self._over_policy()):
            segment = self.segments.pop(0)
            self._fold(segment)
            self.segments_compacted += 1
            reclaimed += segment.nbytes
        self.bytes_reclaimed += reclaimed
        return reclaimed

    def _fold(self, segment: LogSegment) -> None:
        if self.extents and self.extents[-1].last_index < segment.index:
            extent = self.extents[-1]
            extent.last_index = segment.index
            extent.segments += 1
            extent.records += len(segment.records)
            extent.nbytes += segment.nbytes
            return
        self.extents.append(CompactedExtent(
            first_index=segment.index, last_index=segment.index,
            segments=1, records=len(segment.records),
            nbytes=segment.nbytes))

    def stats(self) -> dict:
        return {
            "segments": len(self.segments),
            "archived_bytes": self.archived_bytes,
            "extents": len(self.extents),
            "segments_archived": self.segments_archived,
            "segments_compacted": self.segments_compacted,
            "bytes_reclaimed": self.bytes_reclaimed,
        }


class _VolumeShards:
    """One PASS volume's shard set (tier-internal)."""

    def __init__(self, volume, lasagna: Lasagna, waldos: list[Waldo],
                 archives: list[SegmentArchive]):
        self.volume = volume
        self.lasagna = lasagna
        self.waldos = waldos
        self.archives = archives
        #: Wall seconds each shard's Waldo spent draining (populated
        #: only while wall timing is enabled; see enable_wall_timing).
        self.drain_seconds = [0.0] * len(waldos)

    @property
    def name(self) -> str:
        return self.volume.name


class StorageTier:
    """Facade over every PASS volume's sharded storage pipeline."""

    def __init__(self, shards: int = 1, shard_key: str = "pnode",
                 compaction: Optional[CompactionPolicy] = None,
                 obs=NULL_OBS, faults=None, batching: bool = True):
        if int(shards) < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        if shard_key not in SHARD_KEYS:
            raise ValueError(
                f"shard_key must be one of {SHARD_KEYS}, got {shard_key!r}")
        self.shards = int(shards)
        self.shard_key = shard_key
        self.compaction = compaction or CompactionPolicy()
        self.obs = obs
        self._faults = faults
        self.batching = batching
        #: Effective intra-volume shard count (``volume`` keying keeps
        #: the classic one-pipeline-per-volume layout).
        self.shards_per_volume = self.shards if shard_key == "pnode" else 1
        self._volumes: dict[str, _VolumeShards] = {}
        #: Serializes database inserts (and the push feed into the
        #: shared federated OEM graph) across concurrent shard drains.
        self._merge_lock = (threading.Lock()
                            if self.shards_per_volume > 1 else None)
        self._wall_clock: Optional[Callable[[], float]] = None
        self._drain_clock: Optional[Callable[[], float]] = None
        self._collector_registered = False
        self.drains = 0
        self.parallel_drains = 0
        self.federations = 0

    # -- construction -----------------------------------------------------------

    def attach(self, volume, params=None) -> None:
        """Build one PASS volume's shard set (Lasagna with shard logs,
        one Waldo + database + archive per shard).  The one construction
        site ``System.boot`` uses for the whole storage layer."""
        count = self.shards_per_volume
        lasagna = Lasagna(volume, params, obs=self.obs,
                          faults=self._faults, shards=count)
        waldos: list[Waldo] = []
        archives: list[SegmentArchive] = []
        for log in lasagna.shard_logs:
            archive = SegmentArchive(self.compaction)
            waldos.append(Waldo(
                log, name=log.volume_name, obs=self.obs,
                faults=self._faults, batching=self.batching,
                insert_lock=self._merge_lock, archive=archive))
            archives.append(archive)
        self._volumes[volume.name] = _VolumeShards(
            volume, lasagna, waldos, archives)
        if not self._collector_registered:
            self._collector_registered = True
            self.obs.add_collector("tier", self._obs_counters)

    # -- accessors --------------------------------------------------------------

    def volumes(self) -> list[str]:
        return list(self._volumes)

    def __bool__(self) -> bool:
        return bool(self._volumes)

    def lasagna(self, volume: str) -> Lasagna:
        return self._volumes[volume].lasagna

    def waldos(self, volume: str) -> list[Waldo]:
        """All of one volume's shard Waldos, shard order."""
        return list(self._volumes[volume].waldos)

    def waldo(self, volume: str, shard: int = 0) -> Waldo:
        return self._volumes[volume].waldos[shard]

    def shard_count(self, volume: str) -> int:
        return len(self._volumes[volume].waldos)

    def shard0_waldos(self) -> dict[str, Waldo]:
        """volume -> shard-0 Waldo (the deprecation-wrapper view)."""
        return {name: vs.waldos[0] for name, vs in self._volumes.items()}

    def archives(self, volume: str) -> list[SegmentArchive]:
        return list(self._volumes[volume].archives)

    def databases(self, volume: Optional[str] = None
                  ) -> list[ProvenanceDatabase]:
        """Every shard database (volume order, shard order), or one
        volume's shard databases."""
        if volume is not None:
            return [waldo.database
                    for waldo in self._volumes[volume].waldos]
        return [waldo.database for vs in self._volumes.values()
                for waldo in vs.waldos]

    def database(self, volume: Optional[str] = None,
                 shard: int = 0) -> ProvenanceDatabase:
        """One shard's database (first volume, shard 0 by default).
        Under sharding a volume's provenance spans every shard database
        -- use :meth:`databases` / :meth:`federated_sources` for the
        whole volume."""
        if volume is None:
            volume = next(iter(self._volumes))
        return self._volumes[volume].waldos[shard].database

    # -- ingest path ------------------------------------------------------------

    def sync(self) -> int:
        """Flush + rotate every shard log, then drain every shard;
        returns records inserted (the ``System.sync`` work)."""
        for vs in self._volumes.values():
            vs.lasagna.sync()
        return self.drain()

    def drain(self) -> int:
        """Drain every shard's Waldo; returns records inserted.

        Shards drain concurrently (one worker per shard) when nothing
        needs deterministic serial order: a fault injector, the tracer
        (span trees are per-thread structures), and the journal all
        force the serial path.  ``shards=1`` is always serial -- the
        classic pipeline."""
        self.drains += 1
        jobs = [(vs, index) for vs in self._volumes.values()
                for index in range(len(vs.waldos))]
        parallel = (self.shards_per_volume > 1
                    and len(jobs) > 1
                    and self._faults is None
                    and not self.obs.tracer.enabled
                    and not self.obs.journal.enabled)
        if not parallel:
            inserted = 0
            for vs, index in jobs:
                if self._faults is not None:
                    waldo = vs.waldos[index]
                    self._faults.fire(
                        "shard.drain.pre", volume=vs.name, shard=index,
                        segments=waldo.pending_segment_count)
                inserted += self._drain_one(vs, index)
            return inserted
        self.parallel_drains += 1
        with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
            inserted = sum(pool.map(
                lambda job: self._drain_one(*job), jobs))
        return inserted

    def _drain_one(self, vs: _VolumeShards, index: int) -> int:
        clock = self._drain_clock
        if clock is None:
            return vs.waldos[index].drain()
        started = clock()
        try:
            return vs.waldos[index].drain()
        finally:
            vs.drain_seconds[index] += clock() - started

    # -- query federation --------------------------------------------------------

    def federated_sources(self) -> list[ProvenanceDatabase]:
        """The union of every shard database: the sources of the
        merge-at-query federation.  ``QueryEngine.live`` over this list
        builds one merged OEM graph (kept current by each database's
        push feed), so cross-shard joins resolve exactly as they would
        single-shard -- answers merge at the graph, never per shard."""
        sources = self.databases()
        self.federations += 1
        if self._faults is not None:
            self._faults.fire("federate.merge",
                              volumes=len(self._volumes),
                              sources=len(sources))
        self.obs.event("tier.federate", layer="tier",
                       sources=len(sources))
        return sources

    # -- rollups -----------------------------------------------------------------

    def sizes(self, volume: Optional[str] = None) -> dict:
        """Tier-wide (or one volume's) database/index byte sizes.

        The rollup ``Waldo.sizes()`` cannot provide under sharding:
        totals sum over every shard, with the per-shard breakdown under
        ``"per_shard"`` (keyed by shard label)."""
        totals: dict = {"database": 0, "indexes": 0, "total": 0}
        per_shard: dict[str, dict] = {}
        targets = ([self._volumes[volume]] if volume is not None
                   else list(self._volumes.values()))
        for vs in targets:
            for waldo in vs.waldos:
                sizes = waldo.database.sizes()
                for key in ("database", "indexes", "total"):
                    totals[key] += sizes[key]
                per_shard[waldo.name] = sizes
        totals["per_shard"] = per_shard
        return totals

    def compact(self) -> dict:
        """Force-compact every shard archive; returns rollup stats."""
        reclaimed = 0
        segments = 0
        for vs in self._volumes.values():
            for archive in vs.archives:
                before = archive.segments_compacted
                reclaimed += archive.compact(force=True)
                segments += archive.segments_compacted - before
        return {"segments_compacted": segments,
                "bytes_reclaimed": reclaimed}

    def _obs_counters(self) -> dict:
        archived = compacted = reclaimed = retained = 0
        for vs in self._volumes.values():
            for archive in vs.archives:
                archived += archive.segments_archived
                compacted += archive.segments_compacted
                reclaimed += archive.bytes_reclaimed
                retained += len(archive.segments)
        return {
            "volumes": len(self._volumes),
            "shards": sum(len(vs.waldos)
                          for vs in self._volumes.values()),
            "drains": self.drains,
            "parallel_drains": self.parallel_drains,
            "federations": self.federations,
            "segments_archived": archived,
            "segments_compacted": compacted,
            "segments_retained": retained,
            "archive_bytes_reclaimed": reclaimed,
        }

    # -- wall-clock accounting ---------------------------------------------------

    def enable_wall_timing(self,
                           clock: Optional[Callable[[], float]] = None
                           ) -> None:
        """Start accumulating real seconds of per-shard storage work
        (log append/flush + Waldo drain), the measurement behind the
        sharded ingest benchmark's critical-path model.

        Log work runs inline on the ingest thread, so it is charged
        wall time; drains may run concurrently in the shard pool, so
        each is charged its *own thread's* CPU time
        (``time.thread_time``) -- elapsed time there would bill every
        shard for the GIL holds of all the others and make the
        per-shard numbers meaningless.  An explicit ``clock`` (tests,
        simulated time) is used for both.
        """
        import time
        self._wall_clock = clock or time.perf_counter
        self._drain_clock = clock or time.thread_time
        for vs in self._volumes.values():
            for log in vs.lasagna.shard_logs:
                log.wall_clock = self._wall_clock

    def storage_seconds(self, volume: Optional[str] = None
                        ) -> list[float]:
        """Per-shard storage wall seconds (log work + drain work), one
        entry per shard.  With one worker per shard the tier's elapsed
        storage time is ``max`` of this list; serially it is ``sum`` --
        at ``shards=1`` the two coincide."""
        if volume is not None:
            targets = [self._volumes[volume]]
        else:
            targets = list(self._volumes.values())
        seconds: list[float] = []
        for vs in targets:
            for log, drain in zip(vs.lasagna.shard_logs,
                                  vs.drain_seconds):
                seconds.append(log.wall_seconds + drain)
        return seconds

    # -- crash / recovery --------------------------------------------------------

    def crash(self) -> tuple[int, int]:
        """Machine death: every Waldo requeues undrained segments onto
        its shard log, every Lasagna loses its buffered records.
        Returns ``(requeued_segments, lost_records)``."""
        requeued = 0
        for vs in self._volumes.values():
            for waldo in vs.waldos:
                requeued += waldo.crash()
        lost = 0
        for vs in self._volumes.values():
            lost += vs.lasagna.crash()
        return requeued, lost

    def recover(self, consume: bool = False) -> RecoveryReport:
        """Replay every shard log into its shard database (volume
        order, shard order) and merge the reports.  At ``shards=1``
        this is exactly the classic single-volume recovery."""
        combined = RecoveryReport()
        for vs in self._volumes.values():
            for log, waldo in zip(vs.lasagna.shard_logs, vs.waldos):
                report = recovery.recover(
                    vs.lasagna, database=waldo.database,
                    consume=consume, log=log)
                combined.committed_records.extend(
                    report.committed_records)
                combined.orphaned_records.extend(
                    report.orphaned_records)
                combined.inconsistent_data.extend(
                    report.inconsistent_data)
                combined.torn_bytes += report.torn_bytes
        return combined

    def __repr__(self) -> str:
        return (f"<StorageTier {len(self._volumes)} volume(s) x "
                f"{self.shards_per_volume} shard(s)>")
