"""Whole-program symbol table and call graph over a ``repro`` tree.

The PL2xx layer checks in :mod:`repro.lint.layercheck` police *imports*,
which are the weakest coupling signal: an attribute chain through an
object handed across a boundary reaches another layer without importing
anything.  This module builds the shared substrate the PL3xx dataflow
rules (:mod:`repro.lint.flowcheck`) need to see those couplings:

* a **module table** -- every module parsed (plain :mod:`ast`, nothing
  under analysis is imported), with its import bindings, top-level
  definitions, and ``# lint: disable=`` suppression comments;
* a **class table** -- every class with its methods, its instance
  attributes, and best-effort *types* for those attributes (from
  annotations and ``self.x = SomeClass(...)`` assignments);
* a **private-name ownership index** -- which modules define each
  ``_underscore`` attribute, so a reach like ``kernel.observer._passobjs``
  resolves to its owning layer even when no type is inferable;
* a **resolver** that walks expressions (names, attribute chains,
  calls, subscripts) to the module-qualified symbol they land on;
* the **call graph** itself: module-to-module edges tagged ``import`` /
  ``call`` / ``attr`` / ``dynamic-import``, exportable as deterministic
  JSON or Graphviz dot (``repro lint --graph``).

Resolution is deliberately conservative: an expression that cannot be
traced to a program symbol resolves to ``None`` and the rules stay
silent, so every diagnostic built on top of this table is backed by an
actual resolved reach.
"""

from __future__ import annotations

import ast as pyast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.lint.layercheck import _layer_of, _module_name, _python_files

#: Graph schema stamped into the ``--graph json`` export.
GRAPH_SCHEMA = "repro-lint-graph/1"

#: Trailing-comment suppressions: the ``lint: disable=PL2xx,PL3xx``
#: marker in a trailing comment on the offending line.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Z0-9,\s]+)")

#: Container annotations whose subscript yields the *last* type
#: argument (``dict[str, Waldo][k]`` is a Waldo).
_CONTAINER_NAMES = frozenset({"dict", "Dict", "defaultdict", "OrderedDict",
                              "list", "List", "tuple", "Tuple",
                              "Mapping", "MutableMapping", "Sequence"})

#: Module-level constructors whose result is shared mutable state.
_MUTABLE_CONSTRUCTORS = frozenset({"dict", "list", "set", "bytearray",
                                   "defaultdict", "deque", "OrderedDict",
                                   "Counter"})


# -- type descriptors ---------------------------------------------------------


@dataclass(frozen=True)
class TypeRef:
    """A resolved type: a class qualname, optionally behind a container
    (``elem`` set means subscripting yields that element type)."""

    qual: str
    elem: Optional[str] = None


@dataclass
class FunctionInfo:
    """One function or method, keyed by module-level qualname."""

    qualname: str                    # repro.storage.waldo.Waldo.drain
    module: str
    name: str
    cls: Optional[str]               # owning class qualname, if a method
    node: pyast.AST
    lineno: int


@dataclass
class ClassInfo:
    """One class: methods, attribute types, base-class names."""

    qualname: str
    module: str
    name: str
    lineno: int
    bases: list[str] = field(default_factory=list)   # resolved qualnames
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> candidate TypeRefs (from annotations and
    #: ``self.x = SomeClass(...)`` across every method).
    attr_types: dict[str, set] = field(default_factory=dict)
    #: every attribute name ever assigned on self (typed or not).
    attrs: set = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed module and its locally resolvable names."""

    name: str
    path: str
    tree: pyast.AST
    source: str = ""
    #: local name -> qualified symbol it binds (import or definition).
    bindings: dict[str, str] = field(default_factory=dict)
    #: repro-internal import targets (static), with line numbers.
    imports: list[tuple] = field(default_factory=list)
    #: module-level names bound to mutable containers, name -> lineno.
    mutable_globals: dict[str, int] = field(default_factory=dict)
    #: module-level name -> TypeRef for annotated/constructed globals.
    global_types: dict[str, TypeRef] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: lineno -> set of PL codes suppressed on that line.
    suppressions: dict[int, set] = field(default_factory=dict)


@dataclass
class Program:
    """The whole-program view the flow rules run over."""

    root: str
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: private attribute/method name -> set of defining modules.
    private_owners: dict[str, set] = field(default_factory=dict)
    #: aggregated module->module edges: (src, dst, kind) -> count.
    edges: dict[tuple, int] = field(default_factory=dict)
    #: files that failed to parse: (path, module, source) -- the flow
    #: driver hands these to layercheck so the parse error still shows.
    unparsed: list[tuple] = field(default_factory=list)

    # -- lookups --------------------------------------------------------------

    def module_of(self, qualname: str) -> Optional[str]:
        """The module a qualified symbol is defined in, if known."""
        if qualname in self.modules:
            return qualname
        head = qualname
        while "." in head:
            head = head.rsplit(".", 1)[0]
            if head in self.modules:
                return head
        return None

    def lookup_attr(self, cls: ClassInfo, name: str):
        """Resolve ``name`` on a class (methods, typed attrs, bases).

        Returns ``("method", FunctionInfo)``, ``("attr", TypeRef|None)``
        or ``None`` when the class hierarchy never defines the name.
        """
        seen: set = set()
        stack = [cls.qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            info = self.classes.get(qual)
            if info is None:
                continue
            if name in info.methods:
                return ("method", info.methods[name])
            if name in info.attr_types:
                types = info.attr_types[name]
                best = next((t for t in sorted(types, key=lambda t: t.qual)
                             if t.qual in self.classes or t.elem), None)
                return ("attr", best or next(iter(sorted(
                    types, key=lambda t: t.qual))))
            if name in info.attrs:
                return ("attr", None)
            stack.extend(info.bases)
        return None

    def record_edge(self, src: str, dst: str, kind: str) -> None:
        """Aggregate one module-to-module reach into the call graph."""
        if src == dst:
            return
        key = (src, dst, kind)
        self.edges[key] = self.edges.get(key, 0) + 1


# -- construction -------------------------------------------------------------


def build_program(root: str) -> Program:
    """Parse every module under ``root`` into a :class:`Program`."""
    program = Program(root=root)
    for path in sorted(_python_files(root)):
        module = _module_name(path)
        if module is None:
            continue
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = pyast.parse(source, filename=path)
        except SyntaxError:
            program.unparsed.append((path, module, source))
            continue                    # layercheck reports the parse error
        info = ModuleInfo(module, path, tree, source,
                          suppressions=scan_suppressions(source))
        _collect_module(program, info)
        program.modules[module] = info
    _index_private_owners(program)
    _record_import_edges(program)
    return program


def scan_suppressions(source: str) -> dict[int, set]:
    """``# lint: disable=PL...`` trailing comments, by line number.

    Real COMMENT tokens only -- the marker inside a string literal (a
    docstring example, an error message quoting the syntax) does not
    suppress anything.
    """
    found: dict[int, set] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match:
                codes = {code.strip() for code in match.group(1).split(",")
                         if code.strip()}
                if codes:
                    found[token.start[0]] = codes
    except tokenize.TokenError:
        pass
    return found


def _collect_module(program: Program, info: ModuleInfo) -> None:
    """Fill the module's bindings, definitions, and class tables."""
    for node in info.tree.body:
        _collect_statement(program, info, node)
    # Function-local imports bind names too (deferred imports are the
    # usual home of importlib tricks); fold them into the module's
    # bindings so the resolver and PL305 can see through them.  A local
    # shadow of a module-level name is possible but rare enough that
    # the over-approximation is acceptable.
    seen = {id(node) for node in pyast.iter_child_nodes(info.tree)}
    for top in info.tree.body:
        if isinstance(top, (pyast.If, pyast.Try)):
            seen.update(id(child) for child in pyast.iter_child_nodes(top))
    for node in pyast.walk(info.tree):
        if (isinstance(node, (pyast.Import, pyast.ImportFrom))
                and id(node) not in seen):
            _collect_statement(program, info, node)


def _collect_statement(program: Program, info: ModuleInfo,
                       node: pyast.AST) -> None:
    if isinstance(node, pyast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else alias.name.split(
                ".", 1)[0]
            info.bindings[bound] = target
            if alias.name.startswith("repro"):
                info.imports.append((alias.name, node.lineno))
    elif isinstance(node, pyast.ImportFrom):
        target = _import_from_target(info.name, node)
        if target is None:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            info.bindings[bound] = f"{target}.{alias.name}"
        if target.startswith("repro"):
            info.imports.append((target, node.lineno))
    elif isinstance(node, (pyast.FunctionDef, pyast.AsyncFunctionDef)):
        qual = f"{info.name}.{node.name}"
        fn = FunctionInfo(qual, info.name, node.name, None, node,
                          node.lineno)
        info.functions[node.name] = fn
        program.functions[qual] = fn
        info.bindings.setdefault(node.name, qual)
    elif isinstance(node, pyast.ClassDef):
        _collect_class(program, info, node)
    elif isinstance(node, (pyast.Assign, pyast.AnnAssign)):
        _collect_global(info, node)
    elif isinstance(node, (pyast.If, pyast.Try)):
        # TYPE_CHECKING blocks and guarded imports still bind names.
        for child in pyast.iter_child_nodes(node):
            if isinstance(child, (pyast.Import, pyast.ImportFrom)):
                _collect_statement(program, info, child)


def _import_from_target(module: str, node: pyast.ImportFrom) -> Optional[str]:
    if node.module is None:
        return None
    if node.level:
        return f"{module.rsplit('.', node.level)[0]}.{node.module}"
    return node.module


def _collect_global(info: ModuleInfo, node: pyast.AST) -> None:
    """Record a module-level assignment: binding, mutability, type."""
    if isinstance(node, pyast.AnnAssign):
        targets = [node.target]
        value = node.value
        annotation = node.annotation
    else:
        targets = node.targets
        value = node.value
        annotation = None
    for target in targets:
        if not isinstance(target, pyast.Name):
            continue
        info.bindings.setdefault(target.id, f"{info.name}.{target.id}")
        if _is_mutable_literal(value, info):
            info.mutable_globals[target.id] = node.lineno
        typeref = (_annotation_type(annotation, info) if annotation
                   else _constructed_type(value, info))
        if typeref is not None:
            info.global_types[target.id] = typeref


def _is_mutable_literal(value: Optional[pyast.AST],
                        info: ModuleInfo) -> bool:
    if isinstance(value, (pyast.List, pyast.Dict, pyast.Set,
                          pyast.ListComp, pyast.DictComp, pyast.SetComp)):
        return True
    if isinstance(value, pyast.Call):
        name = None
        if isinstance(value.func, pyast.Name):
            name = value.func.id
        elif isinstance(value.func, pyast.Attribute):
            name = value.func.attr
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _collect_class(program: Program, info: ModuleInfo,
                   node: pyast.ClassDef) -> None:
    qual = f"{info.name}.{node.name}"
    cls = ClassInfo(qual, info.name, node.name, node.lineno)
    for base in node.bases:
        resolved = _resolve_dotted(base, info)
        if resolved:
            cls.bases.append(resolved)
    for item in node.body:
        if isinstance(item, (pyast.FunctionDef, pyast.AsyncFunctionDef)):
            fn_qual = f"{qual}.{item.name}"
            fn = FunctionInfo(fn_qual, info.name, item.name, qual, item,
                              item.lineno)
            cls.methods[item.name] = fn
            program.functions[fn_qual] = fn
            _collect_self_attrs(cls, item, info)
        elif isinstance(item, pyast.AnnAssign) and isinstance(
                item.target, pyast.Name):
            cls.attrs.add(item.target.id)
            typeref = _annotation_type(item.annotation, info)
            if typeref is not None:
                cls.attr_types.setdefault(item.target.id, set()).add(typeref)
        elif isinstance(item, pyast.Assign):
            for target in item.targets:
                if isinstance(target, pyast.Name):
                    cls.attrs.add(target.id)
    info.classes[node.name] = cls
    program.classes[qual] = cls
    info.bindings.setdefault(node.name, qual)


def _collect_self_attrs(cls: ClassInfo, fn: pyast.AST,
                        info: ModuleInfo) -> None:
    """Harvest ``self.x = ...`` attribute names and types from a method."""
    for node in pyast.walk(fn):
        if isinstance(node, pyast.AnnAssign):
            target, value = node.target, node.value
            if _is_self_attr(target):
                cls.attrs.add(target.attr)
                typeref = _annotation_type(node.annotation, info)
                if typeref is not None:
                    cls.attr_types.setdefault(target.attr, set()).add(typeref)
        elif isinstance(node, pyast.Assign):
            for target in node.targets:
                if not _is_self_attr(target):
                    continue
                cls.attrs.add(target.attr)
                typeref = _constructed_type(node.value, info)
                if typeref is None and isinstance(node.value, pyast.Name):
                    # ``self.kernel = kernel``: take the parameter's
                    # annotation when the method declares one.
                    typeref = _param_type(fn, node.value.id, info)
                if typeref is not None:
                    cls.attr_types.setdefault(target.attr, set()).add(typeref)


def _is_self_attr(node: pyast.AST) -> bool:
    return (isinstance(node, pyast.Attribute)
            and isinstance(node.value, pyast.Name)
            and node.value.id == "self")


def _param_type(fn: pyast.AST, name: str,
                info: ModuleInfo) -> Optional[TypeRef]:
    for arg in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]:
        if arg.arg == name and arg.annotation is not None:
            return _annotation_type(arg.annotation, info)
    return None


def _annotation_type(node: Optional[pyast.AST],
                     info: ModuleInfo) -> Optional[TypeRef]:
    """Resolve an annotation to a TypeRef (Optional/containers peeled)."""
    if node is None:
        return None
    if isinstance(node, pyast.Constant) and isinstance(node.value, str):
        try:
            node = pyast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, pyast.Subscript):
        head = node.value
        head_name = (head.id if isinstance(head, pyast.Name)
                     else head.attr if isinstance(head, pyast.Attribute)
                     else None)
        args = (list(node.slice.elts)
                if isinstance(node.slice, pyast.Tuple) else [node.slice])
        if head_name == "Optional" and args:
            return _annotation_type(args[0], info)
        if head_name in _CONTAINER_NAMES and args:
            elem = _annotation_type(args[-1], info)
            if elem is not None:
                return TypeRef(qual=elem.qual, elem=elem.qual)
            return None
        return None
    if isinstance(node, pyast.BinOp) and isinstance(node.op, pyast.BitOr):
        # ``T | None``: take whichever side resolves.
        return (_annotation_type(node.left, info)
                or _annotation_type(node.right, info))
    resolved = _resolve_dotted(node, info)
    return TypeRef(resolved) if resolved else None


def _constructed_type(value: Optional[pyast.AST],
                      info: ModuleInfo) -> Optional[TypeRef]:
    """``SomeClass(...)`` resolved through the module's bindings."""
    if not isinstance(value, pyast.Call):
        return None
    resolved = _resolve_dotted(value.func, info)
    if resolved and resolved.rsplit(".", 1)[-1][:1].isupper():
        return TypeRef(resolved)
    return None


def _resolve_dotted(node: pyast.AST, info: ModuleInfo) -> Optional[str]:
    """Resolve ``Name`` / ``a.b.C`` through the module's bindings."""
    parts = []
    while isinstance(node, pyast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, pyast.Name):
        return None
    base = info.bindings.get(node.id)
    if base is None:
        return None
    return ".".join([base, *reversed(parts)]) if parts else base


def _index_private_owners(program: Program) -> None:
    """Map every ``_name`` a class defines to its defining modules."""
    for cls in program.classes.values():
        for name in [*cls.attrs, *cls.methods]:
            if name.startswith("_") and not name.startswith("__"):
                program.private_owners.setdefault(name, set()).add(
                    cls.module)


def _record_import_edges(program: Program) -> None:
    for info in program.modules.values():
        for target, _lineno in info.imports:
            dst = program.module_of(target) or target
            program.record_edge(info.name, dst, "import")


# -- per-function expression resolution ---------------------------------------


class Resolver:
    """Resolves expressions inside one function to program symbols.

    Results are ``("module", name)``, ``("class", qualname)``,
    ``("instance", TypeRef)``, ``("callable", FunctionInfo)`` or
    ``None``.  The local environment is fed by the flow checker as it
    walks assignments in statement order.
    """

    def __init__(self, program: Program, info: ModuleInfo,
                 fn: Optional[FunctionInfo] = None):
        self.program = program
        self.info = info
        self.fn = fn
        #: local name -> TypeRef ("instance" bindings only).
        self.env: dict[str, TypeRef] = {}
        if fn is not None:
            self._seed_params(fn)

    def _seed_params(self, fn: FunctionInfo) -> None:
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                typeref = _annotation_type(arg.annotation, self.info)
                if typeref is not None:
                    self.env[arg.arg] = typeref
        if fn.cls is not None:
            self.env.setdefault("self", TypeRef(fn.cls))

    def assign(self, name: str, value: pyast.AST) -> None:
        """Track ``name = <expr>`` for later resolution."""
        resolved = self.resolve(value)
        if resolved is not None and resolved[0] == "instance":
            self.env[name] = resolved[1]
        elif name in self.env:
            del self.env[name]          # rebound to something unknown

    def resolve(self, node: pyast.AST):
        if isinstance(node, pyast.Name):
            return self._resolve_name(node.id)
        if isinstance(node, pyast.Attribute):
            return self._resolve_attribute(node)
        if isinstance(node, pyast.Call):
            return self._resolve_call(node)
        if isinstance(node, pyast.Subscript):
            base = self.resolve(node.value)
            if (base is not None and base[0] == "instance"
                    and base[1].elem is not None):
                return ("instance", TypeRef(base[1].elem))
            return None
        return None

    def _resolve_name(self, name: str):
        if name in self.env:
            return ("instance", self.env[name])
        target = self.info.bindings.get(name)
        if target is None:
            return None
        return self._categorize(target)

    def _categorize(self, qual: str):
        program = self.program
        if qual in program.modules:
            return ("module", qual)
        if qual in program.classes:
            return ("class", qual)
        if qual in program.functions:
            return ("callable", program.functions[qual])
        owner = program.module_of(qual)
        if owner is not None and owner != qual:
            # A symbol inside a known module: typed global, or opaque.
            name = qual[len(owner) + 1:]
            if "." not in name:
                typeref = program.modules[owner].global_types.get(name)
                if typeref is not None:
                    return ("instance", typeref)
        elif qual.startswith("repro"):
            return ("module", qual)     # unparsed repro module (partial tree)
        return None

    def _resolve_attribute(self, node: pyast.Attribute):
        base = self.resolve(node.value)
        if base is None:
            return None
        kind, payload = base
        if kind == "module":
            return self._categorize(f"{payload}.{node.attr}")
        if kind in ("class", "instance"):
            qual = payload if kind == "class" else payload.qual
            cls = self.program.classes.get(qual)
            if cls is None:
                return None
            found = self.program.lookup_attr(cls, node.attr)
            if found is None:
                return None
            what, value = found
            if what == "method":
                return ("callable", value)
            if value is not None:
                return ("instance", value)
            return None
        return None

    def _resolve_call(self, node: pyast.Call):
        func = self.resolve(node.func)
        if func is None:
            return None
        if func[0] == "class":
            return ("instance", TypeRef(func[1]))
        if func[0] == "callable":
            returns = getattr(func[1].node, "returns", None)
            owner = self.program.modules.get(func[1].module)
            if returns is not None and owner is not None:
                typeref = _annotation_type(returns, owner)
                if typeref is not None:
                    return ("instance", typeref)
        return None

    def owner_module(self, resolved) -> Optional[str]:
        """The module a resolved symbol is defined in."""
        if resolved is None:
            return None
        kind, payload = resolved
        if kind == "module":
            return self.program.module_of(payload) or payload
        if kind == "class":
            return self.program.classes[payload].module
        if kind == "instance":
            cls = self.program.classes.get(payload.qual)
            return cls.module if cls else None
        if kind == "callable":
            return payload.module
        return None


# -- graph export -------------------------------------------------------------


def graph_payload(program: Program) -> dict:
    """Deterministic JSON document for ``repro lint --graph json``."""
    modules = []
    for name in sorted(program.modules):
        info = program.modules[name]
        method_count = sum(len(cls.methods) for cls in info.classes.values())
        modules.append({
            "name": name,
            "layer": _layer_of(name) or "",
            "classes": len(info.classes),
            "functions": len(info.functions) + method_count,
        })
    edges = [
        {"src": src, "dst": dst, "kind": kind, "count": count}
        for (src, dst, kind), count in sorted(program.edges.items())
    ]
    return {
        "schema": GRAPH_SCHEMA,
        "modules": modules,
        "edges": edges,
    }


def render_graph_dot(program: Program) -> str:
    """Graphviz rendering: modules clustered by layer."""
    by_layer: dict[str, list[str]] = {}
    for name in sorted(program.modules):
        by_layer.setdefault(_layer_of(name) or "(unlayered)", []).append(name)
    lines = ["digraph passflow {", "  rankdir=LR;",
             '  node [shape=box, fontsize=10];']
    for index, layer in enumerate(sorted(by_layer)):
        lines.append(f'  subgraph cluster_{index} {{')
        lines.append(f'    label="{layer}";')
        for name in by_layer[layer]:
            lines.append(f'    "{name}";')
        lines.append("  }")
    styles = {"import": "solid", "call": "bold",
              "attr": "dashed", "dynamic-import": "dotted"}
    for (src, dst, kind), count in sorted(program.edges.items()):
        style = styles.get(kind, "solid")
        lines.append(f'  "{src}" -> "{dst}" '
                     f'[style={style}, label="{kind} x{count}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
