"""Diagnostics framework: rule registry, severities, reporters.

Every check in :mod:`repro.lint` is a registered :class:`Rule` with a
stable ``PL###`` code.  Codes in the PL1xx range are PQL query checks;
PL2xx are layer-discipline import checks over the source tree; PL3xx
are whole-program dataflow checks over the call graph.  Analyzers
emit :class:`Diagnostic` instances through :meth:`Rule.at`, so a
diagnostic can never reference an unregistered code and the registry
doubles as the documentation table (``repro lint --rules``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Severities, in increasing order of gravity.  Only ``ERROR`` blocks
#: query execution (engine pre-pass) or fails the lint exit status.
WARNING = "warning"
ERROR = "error"

_SEVERITIES = (WARNING, ERROR)


@dataclass(frozen=True)
class Rule:
    """One registered check: stable code, default severity, summary."""

    code: str                  # "PL101"
    severity: str              # WARNING | ERROR
    title: str                 # short imperative summary
    detail: str = ""           # one-paragraph description for --rules

    def at(self, message: str, source: str = "<query>",
           line: int = 0, column: int = 0) -> "Diagnostic":
        """Emit one diagnostic of this rule."""
        return Diagnostic(self.code, self.severity, message, source,
                          line, column)


#: The global registry, code -> Rule, in registration order.
_REGISTRY: dict[str, Rule] = {}


def rule(code: str, severity: str, title: str, detail: str = "") -> Rule:
    """Register a rule; codes must be unique and severities known."""
    if severity not in _SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code!r}")
    registered = Rule(code, severity, title, detail)
    # Import-time registration only: every rule module runs this at
    # module scope, before any checker (or shard writer) exists.
    _REGISTRY[code] = registered  # lint: disable=PL304
    return registered


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by code."""
    # Importing the analyzers registers their rules.
    from repro.lint import flowcheck, layercheck, pqlcheck  # noqa: F401
    return sorted(_REGISTRY.values(), key=lambda r: r.code)


def get_rule(code: str) -> Rule:
    """Look up one rule by code."""
    from repro.lint import flowcheck, layercheck, pqlcheck  # noqa: F401
    return _REGISTRY[code]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule fired at a position in a query or file."""

    code: str
    severity: str
    message: str
    source: str = "<query>"    # file path or "<query>"
    line: int = 0              # 1-based; 0 = no position
    column: int = 0            # 0-based, matching the PQL lexer

    def __str__(self) -> str:
        where = self.source
        if self.line:
            where = f"{where}:{self.line}:{self.column}"
        return f"{where}: {self.severity} {self.code}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "source": self.source,
            "line": self.line,
            "column": self.column,
        }


@dataclass
class LintReport:
    """Outcome of one lint run over any number of targets."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    targets_checked: int = 0

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when nothing error-severity was found."""
        return not self.errors

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def __str__(self) -> str:
        status = ("clean" if not self.diagnostics
                  else f"{len(self.errors)} error(s), "
                       f"{len(self.warnings)} warning(s)")
        return (f"passlint: {self.targets_checked} target(s) checked, "
                f"{status}")


# -- reporters ---------------------------------------------------------------


def render_text(report: LintReport) -> str:
    """Human-readable report: one line per diagnostic plus a summary."""
    lines = [str(d) for d in report.diagnostics]
    lines.append(str(report))
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for CI consumers."""
    return json.dumps({
        "ok": report.ok,
        "targets_checked": report.targets_checked,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "diagnostics": [d.to_dict() for d in report.diagnostics],
    }, indent=2, sort_keys=True)
