"""Layer-discipline checking over the ``repro`` source tree (PL2xx).

The paper's Figure 2 stacks the system: applications over libpass/DPAPI,
the core pipeline over the kernel, Lasagna/Waldo in storage, PA-NFS
beside them.  Provenance from those layers only composes because each
layer keeps to its interface; this checker enforces that discipline
*statically*, as import rules over the Python source itself, so a
violation is a CI failure instead of a production incident:

* applications (``repro.apps``) may touch only the libpass/DPAPI
  surface (``repro.core``) and each other;
* the core pipeline may reach the kernel only through the interception
  boundary (``kernel.kernel`` / ``kernel.process`` / ``kernel.vfs``)
  and must never import storage, NFS, or anything above itself;
* every other layer has an explicit allow-list (see ``_ALLOWED``);
* transaction framing (``BEGINTXN`` / ``ENDTXN``) is confined to the
  storage and NFS layers -- nothing else may even name those records;
* finalized ``ProvenanceRecord`` instances are immutable: the frozen
  bypass ``object.__setattr__`` and direct writes to record fields are
  rejected everywhere.

Checks are plain :mod:`ast` passes; no module under test is imported.
"""

from __future__ import annotations

import ast as pyast
import os
from typing import Iterable, Optional

from repro.lint.diagnostics import ERROR, WARNING, Diagnostic, Rule, rule

# -- rules -------------------------------------------------------------------

PL201 = rule(
    "PL201", ERROR, "application layer reaches below libpass/DPAPI",
    "Modules under repro.apps may import only repro.apps and the "
    "repro.core surface (libpass, DPAPI, records, errors); reaching "
    "into the kernel, storage, NFS, or query layers bypasses the "
    "disclosure interface.")
PL202 = rule(
    "PL202", ERROR, "core pipeline escapes the interception boundary",
    "repro.core may import kernel internals only through the "
    "interception boundary (kernel.kernel, kernel.process, kernel.vfs) "
    "and must never import storage, NFS, PQL, apps, or the system "
    "facade.")
PL203 = rule(
    "PL203", ERROR, "layer-discipline import violation",
    "A module imports a layer outside its allow-list (Figure 2 "
    "layering: kernel below core, storage beside the kernel, PQL and "
    "apps on top, the system facade above all).")
PL205 = rule(
    "PL205", ERROR, "transaction framing outside storage/NFS",
    "BEGINTXN/ENDTXN framing records belong to the Lasagna log and the "
    "PA-NFS wire protocol; any other layer naming them can leak "
    "framing into databases (the fsck 'framing-leak' finding, caught "
    "at build time).")
PL206 = rule(
    "PL206", ERROR, "mutation of a finalized provenance record",
    "ProvenanceRecord is frozen; object.__setattr__ bypasses and "
    "direct writes to record fields (subject/attr/value) corrupt "
    "provenance that other layers already trust.")
PL207 = rule(
    "PL207", WARNING, "wildcard import",
    "'from x import *' makes the import graph -- and therefore the "
    "layering -- unauditable.")
PL208 = rule(
    "PL208", ERROR, "observability layer is not a leaf",
    "repro.obs sits beside repro.core.errors as a leaf every layer may "
    "import; the moment it imports any other repro layer, every "
    "instrumentation site becomes a hidden cross-layer edge and the "
    "Figure-2 discipline collapses.")
PL209 = rule(
    "PL209", ERROR, "fault layer reaches above the kernel",
    "repro.faults is injection machinery held by sites across the "
    "stack; it may import only itself, the kernel, and obs.  A "
    "core/storage/nfs back-edge would make every injection site a "
    "hidden upward dependency (the crashlab harness that drives whole "
    "systems lives in repro.crashlab, above the layers).")
PL210 = rule(
    "PL210", ERROR, "query layer pulls from storage",
    "repro.pql must not import repro.storage: the OEM graph *receives* "
    "records -- batch-built from a stream and kept live through "
    "ProvenanceDatabase.subscribe's push feed -- it never reaches into "
    "the database to pull them.  Waldo serves the engine (section 5.1), "
    "not the other way round; a storage import here inverts that "
    "ownership and couples query evaluation to the store's layout.")

#: Layer allow-lists: module-prefix of the *importing* layer -> import
#: prefixes it may use.  The longest matching importer prefix wins.
#: Anything under ``repro.`` not matched here is unconstrained (the
#: system facade, CLI, workloads, and query conveniences sit above
#: every layer by design).
_ALLOWED: dict[str, tuple[str, ...]] = {
    # Applications: the disclosure surface only.
    "repro.apps": ("repro.apps", "repro.core", "repro.obs"),
    # Core pipeline: itself + the kernel interception boundary.  The
    # boundary includes the stacked volume data path (fs_top /
    # read_bytes / write_bytes): the observer reads and writes file
    # bytes through the same volume stack the VFS interposes on.
    "repro.core": ("repro.core", "repro.kernel.kernel",
                   "repro.kernel.process", "repro.kernel.vfs",
                   "repro.kernel.volume",
                   "repro.obs", "repro.faults"),
    # Kernel: itself + core datatypes (records flow upward only).
    "repro.kernel": ("repro.kernel", "repro.core", "repro.obs",
                     "repro.faults"),
    # PQL: itself, core datatypes, and the static analyzer pre-pass.
    "repro.pql": ("repro.pql", "repro.core", "repro.lint", "repro.obs"),
    # Storage: itself, core, kernel structures it persists to, and the
    # query engine Waldo serves.
    "repro.storage": ("repro.storage", "repro.core", "repro.kernel",
                      "repro.pql", "repro.obs", "repro.faults"),
    # NFS: a distributed client/server pair; it drives whole systems.
    "repro.nfs": ("repro.nfs", "repro.core", "repro.kernel",
                  "repro.storage", "repro.system", "repro.obs",
                  "repro.faults"),
    # The linter itself: core vocabulary + the PQL AST it checks.
    "repro.lint": ("repro.lint", "repro.core", "repro.pql", "repro.obs"),
    # Observability: a leaf beside core.errors -- every layer above may
    # import it, it may import nothing (PL208).
    "repro.obs": ("repro.obs",),
    # Fault injection: a near-leaf beside obs.  Sites everywhere hold
    # an injector, so it may not depend on the layers hosting them
    # (PL209): itself, the kernel below, and obs only.
    "repro.faults": ("repro.faults", "repro.kernel", "repro.obs"),
}

#: Layers that must never import the system facade or the CLI
#: (they sit *below* them in Figure 2).
_NO_FACADE = ("repro.apps", "repro.core", "repro.kernel", "repro.pql",
              "repro.storage", "repro.lint", "repro.obs", "repro.faults")

#: Modules allowed to name the framing attributes: the Lasagna log and
#: recovery, Waldo (which strips orphans), fsck (which checks for
#: leakage), the PA-NFS protocol, the attribute declaration itself,
#: the OEM builder (which must strip framing from query graphs), and
#: this linter (which must name them to police them).
_FRAMING_ATTRS = frozenset({"BEGINTXN", "ENDTXN"})
_FRAMING_ALLOWED = ("repro.storage", "repro.nfs", "repro.core.records",
                    "repro.pql.oem", "repro.lint")

#: Record fields whose assignment outside a record's own methods is a
#: finalized-record mutation.
_RECORD_FIELDS = frozenset({"subject", "attr", "value"})
_RECORD_NAME_HINTS = ("record", "rec", "proto")


# -- entry points ------------------------------------------------------------


def check_tree(root: str) -> list[Diagnostic]:
    """Check every ``*.py`` under ``root`` (a path at or inside the
    ``repro`` package, or a tree containing it)."""
    diagnostics: list[Diagnostic] = []
    for path in sorted(_python_files(root)):
        module = _module_name(path)
        if module is None:
            continue
        with open(path, "r", encoding="utf-8") as handle:
            diagnostics.extend(check_source(handle.read(), module, path))
    return diagnostics


def check_source(source: str, module: str,
                 path: str = "<source>") -> list[Diagnostic]:
    """Check one module's source text, attributed to ``module``
    (dotted name, e.g. ``repro.apps.shellutils``)."""
    try:
        tree = pyast.parse(source, filename=path)
    except SyntaxError as exc:
        return [PL203.at(f"module does not parse: {exc.msg}", path,
                         exc.lineno or 0, (exc.offset or 1) - 1)]
    checker = _ModuleChecker(module, path)
    checker.visit(tree)
    return checker.diagnostics


def _python_files(root: str) -> Iterable[str]:
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in ("__pycache__", ".git", "egg-info")
                       and not d.endswith(".egg-info")]
        for filename in filenames:
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def _module_name(path: str) -> Optional[str]:
    """Dotted module name from a file path, anchored at ``repro``."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if "repro" not in parts:
        return None
    index = len(parts) - 1 - parts[::-1].index("repro")
    tail = parts[index:]
    tail[-1] = tail[-1][:-3]                      # strip .py
    if tail[-1] == "__init__":
        tail.pop()
    return ".".join(tail)


def _layer_of(module: str) -> Optional[str]:
    """Longest _ALLOWED prefix governing this module, if any."""
    best = None
    for prefix in _ALLOWED:
        if module == prefix or module.startswith(prefix + "."):
            if best is None or len(prefix) > len(best):
                best = prefix
    return best


def _within(module: str, prefixes: Iterable[str]) -> bool:
    return any(module == p or module.startswith(p + ".")
               for p in prefixes)


def import_violation(module: str,
                     target: str) -> Optional[tuple[Rule, str]]:
    """The (rule, message) importing ``target`` from ``module`` breaks,
    or None when the layering allows it.

    The one shared judgment for every way an import can happen: the
    static ``import``/``from`` pass below, and passflow's PL305
    constant-folding of ``importlib.import_module("...")`` calls
    (:mod:`repro.lint.flowcheck`), so a dynamic import is held to
    exactly the Figure-2 rules a static one is.
    """
    if not target.startswith("repro"):
        return None
    if (_within(module, _NO_FACADE)
            and _within(target, ("repro.system", "repro.cli"))):
        code = (PL201 if _within(module, ("repro.apps",))
                else PL202 if _within(module, ("repro.core",))
                else PL203)
        return code, (f"{module} must not import {target} "
                      "(the facade sits above every layer)")
    layer = _layer_of(module)
    if layer is None:
        return None
    if _within(target, _ALLOWED[layer]):
        return None
    if layer == "repro.pql" and _within(target, ("repro.storage",)):
        return PL210, (f"{module} imports {target}; the query layer "
                       "receives records (push feed), it does not pull "
                       "them from storage")
    if layer == "repro.obs":
        return PL208, (f"{module} imports {target}; repro.obs is a leaf "
                       "layer and may import nothing from the rest of "
                       "repro")
    if layer == "repro.faults":
        return PL209, (f"{module} imports {target}; repro.faults may "
                       "import only the kernel and obs (no "
                       "core/storage/nfs back-edges)")
    if layer == "repro.apps":
        return PL201, (f"{module} imports {target}; applications may "
                       "touch only the libpass/DPAPI surface "
                       "(repro.core)")
    if layer == "repro.core":
        return PL202, (f"{module} imports {target}; the core pipeline "
                       "may reach the kernel only via "
                       "kernel.kernel/process/vfs")
    return PL203, (f"{module} imports {target}, outside the {layer} "
                   f"allow-list {sorted(_ALLOWED[layer])}")


# -- the AST pass ------------------------------------------------------------


class _ModuleChecker(pyast.NodeVisitor):
    def __init__(self, module: str, path: str):
        self.module = module
        self.path = path
        self.layer = _layer_of(module)
        self.diagnostics: list[Diagnostic] = []

    def _emit(self, registered, message: str, node: pyast.AST) -> None:
        self.diagnostics.append(registered.at(
            message, self.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0)))

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: pyast.Import) -> None:
        for alias in node.names:
            self._check_import(alias.name, node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: pyast.ImportFrom) -> None:
        if node.module is None:          # "from . import x" (relative)
            self.generic_visit(node)
            return
        if node.level:                   # relative: resolve against self
            base = self.module.rsplit(".", node.level)[0]
            target = f"{base}.{node.module}"
        else:
            target = node.module
        if any(alias.name == "*" for alias in node.names):
            self._emit(PL207, f"wildcard import from {target!r}", node)
        self._check_import(target, node)
        self.generic_visit(node)

    def _check_import(self, target: str, node: pyast.AST) -> None:
        found = import_violation(self.module, target)
        if found is not None:
            registered, message = found
            self._emit(registered, message, node)

    # -- framing confinement -------------------------------------------------

    def visit_Attribute(self, node: pyast.Attribute) -> None:
        if (node.attr in _FRAMING_ATTRS
                and isinstance(node.value, pyast.Name)
                and node.value.id == "Attr"
                and not _within(self.module, _FRAMING_ALLOWED)):
            self._emit(PL205, f"Attr.{node.attr} referenced in "
                       f"{self.module}; transaction framing is confined "
                       "to the storage and NFS layers", node)
        self.generic_visit(node)

    def visit_Constant(self, node: pyast.Constant) -> None:
        if (isinstance(node.value, str) and node.value in _FRAMING_ATTRS
                and self.module.startswith("repro")
                and not _within(self.module, _FRAMING_ALLOWED)):
            self._emit(PL205, f"framing attribute {node.value!r} named in "
                       f"{self.module}; transaction framing is confined "
                       "to the storage and NFS layers", node)
        self.generic_visit(node)

    # -- record immutability -------------------------------------------------

    def visit_Call(self, node: pyast.Call) -> None:
        func = node.func
        if (isinstance(func, pyast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, pyast.Name)
                and func.value.id == "object"):
            target = node.args[0] if node.args else None
            if not (isinstance(target, pyast.Name)
                    and target.id == "self"):
                self._emit(PL206, "object.__setattr__ on a foreign object "
                           "bypasses frozen-record immutability", node)
        self.generic_visit(node)

    def visit_Assign(self, node: pyast.Assign) -> None:
        for target in node.targets:
            self._check_record_write(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: pyast.AugAssign) -> None:
        self._check_record_write(node.target, node)
        self.generic_visit(node)

    def _check_record_write(self, target: pyast.AST,
                            node: pyast.AST) -> None:
        if not (isinstance(target, pyast.Attribute)
                and target.attr in _RECORD_FIELDS
                and isinstance(target.value, pyast.Name)):
            return
        holder = target.value.id.lower()
        if any(hint in holder for hint in _RECORD_NAME_HINTS):
            self._emit(PL206, f"assignment to {target.value.id}."
                       f"{target.attr} mutates a provenance record "
                       "after finalization", node)
