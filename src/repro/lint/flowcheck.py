"""Dataflow rules over the whole-program call graph (PL3xx): passflow.

The PL2xx pass answers "who imports whom".  These rules answer the
questions the **sharded storage tier** actually depends on: who *reaches*
whom at run time, who touches state that is about to be split across
shard writers, and which couplings would turn into races the moment
Waldo/ProvenanceDatabase/OEMGraph go per-shard:

* **PL301** -- layer discipline over calls and attribute chains, not
  just imports: a resolved reach into a layer outside the accessor's
  allow-list is a violation even when no import names that layer.
* **PL302** -- cross-layer private-state reach: touching another
  layer's ``_underscore`` attributes.  These are exactly the couplings
  that break when the touched state becomes per-shard.
* **PL303** -- batch escape/mutation: ``submit_batch`` / ``append_batch``
  / ``apply_batch``-style entry points receive a :class:`RecordBatch`
  (or record sequence) that crossed a layer boundary; the callee must
  not mutate it, nor retain it and mutate it later.
* **PL304** -- concurrency readiness: module-level mutable state
  written from function bodies, class-level shared state written from
  methods, and writes into storage-tier instances from outside the
  storage layer.  Each finding is a race precondition for the sharded
  tier; the sanctioned write paths are the tier's own entry points
  (``Waldo.drain*``, ``ProvenanceLog.append*``, recovery) behind the
  layer boundary, and module-scope constants or ``itertools.count``
  id mints elsewhere.
* **PL305** -- dynamic imports: ``importlib.import_module`` /
  ``__import__`` with a constant argument is folded into the import
  graph and judged by the PL2xx rules; a non-constant argument defeats
  static layer checking and is flagged.
* **PL306** -- an ``# lint: disable=...`` suppression that matched no
  diagnostic (stale suppressions must not linger once the underlying
  reach is fixed).

:func:`analyze_tree` is the whole-pass driver the CLI uses: PL2xx per
module, PL3xx over the program, ``# lint: disable=`` suppressions
honored (and audited) across both.
"""

from __future__ import annotations

import ast as pyast
from typing import Optional

from repro.lint import layercheck
from repro.lint.callgraph import (
    ModuleInfo,
    Program,
    Resolver,
    _resolve_dotted,
    build_program,
)
from repro.lint.diagnostics import ERROR, WARNING, Diagnostic, rule
from repro.lint.layercheck import _ALLOWED, _layer_of, _within

# -- rules -------------------------------------------------------------------

PL301 = rule(
    "PL301", ERROR, "cross-layer reach through an object",
    "A call or attribute chain lands in a layer outside the accessor's "
    "Figure-2 allow-list even though no import names that layer: the "
    "object was handed across a boundary and the module reaches "
    "through it.  The coupling is as real as an import and invisible "
    "to PL2xx.")
PL302 = rule(
    "PL302", ERROR, "cross-layer private-state reach",
    "A module touches another layer's _underscore attribute.  Private "
    "state is exactly what becomes per-shard when the storage tier is "
    "sharded (Waldo, ProvenanceDatabase, OEMGraph), so every "
    "cross-layer reach into it is a coupling that breaks under the "
    "refactor.  Reach it through a public method on the owning class "
    "instead.")
PL303 = rule(
    "PL303", ERROR, "batch mutated after crossing a layer boundary",
    "A submit_batch/append_batch/apply_batch-style entry point mutates "
    "its batch argument, or retains it and mutates it later.  Batches "
    "are shared, not transferred: the producer may still hold the "
    "object, and under sharded ingest another writer may be iterating "
    "it.  Copy before mutating, or build a new batch.")
PL304 = rule(
    "PL304", ERROR, "shared mutable state is not shard-ready",
    "Module-level mutable state written from a function body, "
    "class-level shared state written from a method, or storage-tier "
    "instance state written from outside the storage layer.  Each is a "
    "race precondition once parallel shard writers exist; the "
    "sanctioned storage write paths are the tier's own entry points "
    "(Waldo.drain*, ProvenanceLog.append*, recovery), and elsewhere "
    "module-scope constants or an itertools.count id mint.")
PL305 = rule(
    "PL305", WARNING, "dynamic import defeats static layer checking",
    "importlib.import_module/__import__ with a non-constant argument "
    "cannot be checked against the Figure-2 allow-lists.  Constant "
    "arguments are folded into the import graph and judged by the "
    "PL2xx rules; non-constant ones need a justification "
    "(# lint: disable=PL305).")
PL306 = rule(
    "PL306", WARNING, "unused lint suppression",
    "A '# lint: disable=...' comment matched no diagnostic on its "
    "line.  Stale suppressions hide future regressions; delete the "
    "comment once the violation it excused is gone.")

#: Batch entry-point names whose first non-self argument is a batch
#: that crossed a layer boundary (PL303).
_BATCH_ENTRY_POINTS = frozenset({
    "submit_batch", "append_batch", "apply_batch", "flush_batch",
    "insert_many",
})

#: Receiver method names that mutate a container in place.
_MUTATORS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "remove", "reverse",
    "setdefault", "sort", "update",
})

#: Spellings of the dynamic import entry points (PL305).
_DYNAMIC_IMPORTERS = frozenset({"importlib.import_module", "__import__"})


def _component(module: str) -> str:
    """The layer (or top-level component) a module belongs to, for the
    cross-layer tests: layered modules map to their _ALLOWED prefix,
    everything else (system, cli, query, crashlab, workloads...) to its
    first two dotted parts."""
    layer = _layer_of(module)
    if layer is not None:
        return layer
    parts = module.split(".")
    return ".".join(parts[:2]) if len(parts) > 1 else parts[0]


# -- entry points ------------------------------------------------------------


def analyze_tree(root: str) -> list[Diagnostic]:
    """Run the whole pass over a tree: PL2xx per module, PL3xx over the
    program, suppressions applied and audited.  The CLI's engine."""
    program = build_program(root)
    return analyze_program(program)


def analyze_program(program: Program) -> list[Diagnostic]:
    """As :func:`analyze_tree`, over an already-built program."""
    diagnostics: list[Diagnostic] = []
    for name in sorted(program.modules):
        info = program.modules[name]
        diagnostics.extend(
            layercheck.check_source(info.source, name, info.path))
    for path, module, source in program.unparsed:
        diagnostics.extend(layercheck.check_source(source, module, path))
    diagnostics.extend(check_program(program))
    return _apply_suppressions(program, diagnostics)


def check_program(program: Program) -> list[Diagnostic]:
    """Just the PL3xx rules (no layercheck, no suppression filtering)."""
    diagnostics: list[Diagnostic] = []
    for name in sorted(program.modules):
        checker = _FlowChecker(program, program.modules[name])
        checker.run()
        diagnostics.extend(checker.diagnostics)
    return diagnostics


def _apply_suppressions(program: Program,
                        diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Honor ``# lint: disable=`` comments; report stale ones (PL306)."""
    by_path = {info.path: info.suppressions
               for info in program.modules.values()}
    used: set = set()
    kept: list[Diagnostic] = []
    for diagnostic in diagnostics:
        codes = by_path.get(diagnostic.source, {}).get(diagnostic.line)
        if codes and diagnostic.code in codes:
            used.add((diagnostic.source, diagnostic.line, diagnostic.code))
            continue
        kept.append(diagnostic)
    for path in sorted(by_path):
        for line in sorted(by_path[path]):
            for code in sorted(by_path[path][line]):
                if (path, line, code) not in used:
                    kept.append(PL306.at(
                        f"suppression of {code} matched no diagnostic",
                        path, line))
    kept.sort(key=lambda d: (d.source, d.line, d.column, d.code))
    return kept


# -- the flow pass -----------------------------------------------------------


class _FlowChecker(pyast.NodeVisitor):
    """One module's PL3xx pass over the shared program tables."""

    def __init__(self, program: Program, info: ModuleInfo):
        self.program = program
        self.info = info
        self.layer = _layer_of(info.name)
        self.component = _component(info.name)
        self.diagnostics: list[Diagnostic] = []
        self.resolver = Resolver(program, info)
        self._class = None              # enclosing ClassInfo, if any
        self._fn = None                 # enclosing FunctionInfo, if any
        self._locals: set = set()       # names bound in the enclosing fn
        self._globals_declared: set = set()
        self._judged: set = set()       # id() of Attribute nodes decided
        self._flagged: set = set()      # id() of nodes already diagnosed

    def run(self) -> None:
        for node in self.info.tree.body:
            self.visit(node)

    def _emit(self, registered, message: str, node: pyast.AST) -> None:
        if id(node) in self._flagged:
            return
        self._flagged.add(id(node))
        self.diagnostics.append(registered.at(
            message, self.info.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0)))

    # -- scope tracking ------------------------------------------------------

    def visit_ClassDef(self, node: pyast.ClassDef) -> None:
        outer = self._class
        self._class = self.info.classes.get(node.name)
        for item in node.body:
            self.visit(item)
        self._class = outer

    def visit_FunctionDef(self, node: pyast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: pyast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(self, node) -> None:
        qual = (f"{self._class.qualname}.{node.name}" if self._class
                else f"{self.info.name}.{node.name}")
        outer = (self._fn, self.resolver, self._locals,
                 self._globals_declared)
        self._fn = self.program.functions.get(qual)
        self.resolver = Resolver(self.program, self.info, self._fn)
        self._locals = _assigned_names(node)
        self._globals_declared = set()
        if self._fn is not None and node.name in _BATCH_ENTRY_POINTS:
            self._check_batch_entry(node)
        for item in node.body:
            self.visit(item)
        (self._fn, self.resolver, self._locals,
         self._globals_declared) = outer

    def visit_Global(self, node: pyast.Global) -> None:
        self._globals_declared.update(node.names)
        written = [name for name in node.names if name in self._locals]
        if written:
            self._emit(PL304, "module-level state written via 'global "
                       f"{', '.join(written)}'; a shard-ready module "
                       "keeps no rebindable globals (use an instance, "
                       "or an itertools.count id mint)", node)

    # -- reaches (PL301 / PL302) ---------------------------------------------

    def visit_Attribute(self, node: pyast.Attribute) -> None:
        self._judge_reach(node, is_call=False)
        self.generic_visit(node)

    def _judge_reach(self, node: pyast.Attribute, is_call: bool) -> None:
        if id(node) in self._judged:
            return
        self._judged.add(id(node))
        base, attr = node.value, node.attr
        if isinstance(base, pyast.Name) and base.id in ("self", "cls"):
            return
        resolved = self.resolver.resolve(base)
        owner = self.resolver.owner_module(resolved)
        if owner and owner != self.info.name and owner.startswith("repro"):
            self.program.record_edge(self.info.name, owner,
                                     "call" if is_call else "attr")
        private = attr.startswith("_") and not attr.startswith("__")
        if private and self._check_private_reach(node, attr, owner):
            return
        if (resolved is not None and resolved[0] in ("class", "instance")
                and owner is not None and owner.startswith("repro")
                and self.layer is not None
                and not _within(owner, _ALLOWED[self.layer])):
            self._emit(PL301, f"{self.info.name} reaches "
                       f"{owner}.{attr} through an object; {owner} is "
                       f"outside the {self.layer} allow-list "
                       f"{sorted(_ALLOWED[self.layer])}", node)

    def _check_private_reach(self, node: pyast.Attribute, attr: str,
                             owner: Optional[str]) -> bool:
        """PL302 when the private attr's owner is another layer."""
        if owner is not None:
            if (owner.startswith("repro")
                    and _component(owner) != self.component):
                self._emit(PL302, f"{self.info.name} reaches private "
                           f"state {attr!r} of {owner}; cross-layer "
                           "_underscore access breaks when that state "
                           "goes per-shard", node)
                return True
            return False
        owners = self.program.private_owners.get(attr)
        if not owners or attr in self.info.bindings:
            return False
        if all(_component(o) != self.component for o in owners):
            self._emit(PL302, f"{self.info.name} reaches private state "
                       f"{attr!r}, defined only in "
                       f"{', '.join(sorted(owners))}; cross-layer "
                       "_underscore access breaks when that state goes "
                       "per-shard", node)
            return True
        return False

    # -- calls: mutation receivers and dynamic imports -----------------------

    def visit_Call(self, node: pyast.Call) -> None:
        self._check_dynamic_import(node)
        func = node.func
        if isinstance(func, pyast.Attribute):
            self._judge_reach(func, is_call=True)
            if func.attr in _MUTATORS:
                self._check_state_write(func.value, node,
                                        verb=f".{func.attr}()")
        self.generic_visit(node)

    def _check_dynamic_import(self, node: pyast.Call) -> None:
        dotted = _resolve_dotted(node.func, self.info)
        if dotted is None and isinstance(node.func, pyast.Name):
            dotted = node.func.id
        if dotted not in _DYNAMIC_IMPORTERS:
            return
        target = node.args[0] if node.args else None
        if isinstance(target, pyast.Constant) and isinstance(
                target.value, str):
            # Constant argument: fold into the import graph and hold it
            # to the same PL2xx rules a static import faces.
            resolved = self.program.module_of(target.value) or target.value
            if resolved.startswith("repro"):
                self.program.record_edge(self.info.name, resolved,
                                         "dynamic-import")
            found = layercheck.import_violation(self.info.name,
                                               target.value)
            if found is not None:
                registered, message = found
                self._emit(registered, f"{message} (via dynamic import)",
                           node)
            return
        self._emit(PL305, f"{self.info.name} imports dynamically with a "
                   "non-constant argument; the target cannot be checked "
                   "against the layer rules", node)

    # -- writes (PL304) ------------------------------------------------------

    def visit_Assign(self, node: pyast.Assign) -> None:
        for target in node.targets:
            self._check_write_target(target, node)
            if isinstance(target, pyast.Name):
                self._check_global_write(target, node)
                self.resolver.assign(target.id, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: pyast.AugAssign) -> None:
        self._check_write_target(node.target, node)
        if isinstance(node.target, pyast.Name):
            self._check_global_write(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: pyast.AnnAssign) -> None:
        self._check_write_target(node.target, node)
        if isinstance(node.target, pyast.Name) and node.value is not None:
            self._check_global_write(node.target, node)
            self.resolver.assign(node.target.id, node.value)
        self.generic_visit(node)

    def _check_global_write(self, target: pyast.Name,
                            node: pyast.AST) -> None:
        # Rebinding a declared-global name: reported once, at the
        # ``global`` statement (visit_Global), not per assignment.
        return

    def _check_write_target(self, target: pyast.AST,
                            node: pyast.AST) -> None:
        """Assignments through attributes/subscripts: shared state?"""
        root = target
        via_subscript = False
        while isinstance(root, pyast.Subscript):
            root = root.value
            via_subscript = True
        if isinstance(root, pyast.Name):
            if via_subscript:
                self._check_mutable_global_write(root, node, "[...]=")
            return
        if isinstance(root, pyast.Attribute):
            self._check_state_write(root.value, node, verb=f".{root.attr}=",
                                    written_attr=root.attr)

    def _check_mutable_global_write(self, root: pyast.Name,
                                    node: pyast.AST, verb: str) -> None:
        name = root.id
        if (name in self.info.mutable_globals
                and name not in self._locals
                and self._fn is not None):
            self._emit(PL304, f"module-level mutable {name!r} written "
                       f"from a function body ({name}{verb}); under "
                       "parallel shard writers this is a data race -- "
                       "make it instance state or justify with "
                       "# lint: disable=PL304", node)

    def _check_state_write(self, base: pyast.AST, node: pyast.AST,
                           verb: str, written_attr: str = "") -> None:
        """A write (or in-place mutation) whose receiver is ``base``."""
        if self._fn is None:
            return                      # module top level: definitions
        if isinstance(base, pyast.Name):
            if base.id in ("self", "cls"):
                return
            self._check_mutable_global_write(base, node, verb)
        # Peel ``x.records.append`` style chains down to the owner.
        probe = base
        while isinstance(probe, pyast.Attribute):
            probe = probe.value
        if isinstance(probe, pyast.Name) and probe.id in ("self", "cls"):
            return
        resolved = self.resolver.resolve(base)
        if resolved is None:
            return
        kind, payload = resolved
        owner = self.resolver.owner_module(resolved)
        if kind == "class":
            self._emit(PL304, f"class-level state of {payload} written "
                       f"from a function body ({verb}); class "
                       "attributes are process-global under sharding -- "
                       "use instance state or an itertools.count id "
                       "mint", node)
            return
        if (owner is not None and owner.startswith("repro.storage")
                and not self.info.name.startswith("repro.storage")):
            self._emit(PL304, f"{self.info.name} writes storage-tier "
                       f"state ({owner}{verb}); only the storage "
                       "layer's own entry points (Waldo.drain*, "
                       "ProvenanceLog.append*, recovery) may write it "
                       "once the tier is sharded", node)

    # -- PL303: batch entry points -------------------------------------------

    def _check_batch_entry(self, node) -> None:
        args = node.args
        params = [a.arg for a in [*args.posonlyargs, *args.args]
                  if a.arg not in ("self", "cls")]
        if not params:
            return
        batch = params[0]
        aliases = {batch}
        retained: list[tuple[str, pyast.AST]] = []
        for stmt in pyast.walk(node):
            if isinstance(stmt, pyast.Assign):
                value_is_batch = (isinstance(stmt.value, pyast.Name)
                                  and stmt.value.id in aliases)
                value_is_backing = (
                    isinstance(stmt.value, pyast.Attribute)
                    and isinstance(stmt.value.value, pyast.Name)
                    and stmt.value.value.id in aliases)
                for target in stmt.targets:
                    if isinstance(target, pyast.Name):
                        # A bare-name target is a rebind, never a
                        # mutation: ``b = batch`` adds an alias,
                        # ``batch = list(batch)`` (defensive copy)
                        # releases one.
                        if value_is_batch:
                            aliases.add(target.id)
                        else:
                            aliases.discard(target.id)
                    elif (_is_self_attr_node(target)
                          and (value_is_batch or value_is_backing)):
                        retained.append((target.attr, stmt))
                    elif _rooted_in(target, aliases):
                        self._emit(PL303, f"batch argument {batch!r} "
                                   f"mutated in {node.name} (assignment "
                                   "through the batch); batches that "
                                   "crossed a layer boundary are "
                                   "shared, not owned", stmt)
            elif isinstance(stmt, (pyast.AugAssign, pyast.Delete)):
                targets = (stmt.targets if isinstance(stmt, pyast.Delete)
                           else [stmt.target])
                for target in targets:
                    if _rooted_in(target, aliases):
                        self._emit(PL303, f"batch argument {batch!r} "
                                   f"mutated in {node.name}; batches "
                                   "that crossed a layer boundary are "
                                   "shared, not owned", stmt)
            elif isinstance(stmt, pyast.Call):
                func = stmt.func
                if (isinstance(func, pyast.Attribute)
                        and func.attr in _MUTATORS
                        and _rooted_in(func.value, aliases)):
                    self._emit(PL303, f"batch argument {batch!r} mutated "
                               f"in {node.name} (.{func.attr}()); "
                               "batches that crossed a layer boundary "
                               "are shared, not owned", stmt)
        for attr, stmt in retained:
            if self._class is not None and _class_mutates_attr(
                    self.program, self._class, attr):
                self._emit(PL303, f"batch argument {batch!r} retained as "
                           f"self.{attr} in {node.name} and mutated "
                           "elsewhere in the class; copy the records "
                           "instead of adopting the caller's list", stmt)


def _assigned_names(fn) -> set:
    """Names bound inside a function: params plus assignment targets."""
    args = fn.args
    names = {a.arg for a in [*args.posonlyargs, *args.args,
                             *args.kwonlyargs]}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in pyast.walk(fn):
        if isinstance(node, pyast.Assign):
            for target in node.targets:
                names.update(_name_targets(target))
        elif isinstance(node, (pyast.AugAssign, pyast.AnnAssign,
                               pyast.For, pyast.AsyncFor)):
            names.update(_name_targets(node.target))
        elif isinstance(node, (pyast.With, pyast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(_name_targets(item.optional_vars))
        elif isinstance(node, pyast.comprehension):
            names.update(_name_targets(node.target))
        elif isinstance(node, pyast.Global):
            # Declared global: assignments rebind the *module* name.
            names.difference_update(node.names)
    return names


def _name_targets(target: pyast.AST) -> set:
    if isinstance(target, pyast.Name):
        return {target.id}
    if isinstance(target, (pyast.Tuple, pyast.List)):
        found: set = set()
        for element in target.elts:
            found.update(_name_targets(element))
        return found
    return set()


def _is_self_attr_node(node: pyast.AST) -> bool:
    return (isinstance(node, pyast.Attribute)
            and isinstance(node.value, pyast.Name)
            and node.value.id == "self")


def _rooted_in(node: pyast.AST, names: set) -> bool:
    """True when an attribute/subscript chain bottoms out at a name."""
    while isinstance(node, (pyast.Attribute, pyast.Subscript)):
        node = node.value
    return isinstance(node, pyast.Name) and node.id in names


def _class_mutates_attr(program: Program, cls, attr: str) -> bool:
    """Does any method of ``cls`` mutate ``self.<attr>`` in place?"""
    for method in cls.methods.values():
        for node in pyast.walk(method.node):
            if isinstance(node, pyast.Call):
                func = node.func
                if (isinstance(func, pyast.Attribute)
                        and func.attr in _MUTATORS
                        and _is_self_attr_node(func.value)
                        and func.value.attr == attr):
                    return True
            elif isinstance(node, (pyast.Assign, pyast.AugAssign)):
                targets = (node.targets if isinstance(node, pyast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, pyast.Subscript)
                            and _is_self_attr_node(target.value)
                            and target.value.attr == attr):
                        return True
    return False
