"""Static analysis of parsed PQL queries (the PL1xx rules).

Runs over the :mod:`repro.pql.ast` tree *before* evaluation and reports
queries that can only fail or return nothing: unknown edge labels and
attributes (checked against the :class:`repro.core.records.Attr`
vocabulary, optionally widened by labels observed in a live OEM graph),
unbound or shadowed FROM variables, traversal over non-reference
attributes, type-incompatible comparisons, and unbounded-closure cost
hazards.  Every diagnostic is positioned with the line/column the lexer
recorded on the AST node.

The query engine runs :func:`check_query` as an opt-out pre-pass and
converts error-severity diagnostics into the same ``PQLError`` family
the evaluator raises, so a bad query fails in microseconds with a
positioned message instead of burning a nested-loop join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.errors import PQLError, PQLNameError, PQLSyntaxError
from repro.core.records import Attr, ObjType
from repro.lint.diagnostics import ERROR, WARNING, Diagnostic, rule
from repro.pql import ast

#: The reserved FROM root (mirrors ``OEMGraph.ROOT``; kept local so the
#: analyzer does not depend on graph construction).
_ROOT = "Provenance"

_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})
_SCALARS = frozenset({"len", "lower", "upper", "basename"})
_STRING_SCALARS = frozenset({"lower", "upper", "basename"})

#: Conventional value types of well-known atoms (for the PL110 check);
#: atoms absent here have no statically known type.
_ATOM_TYPES = {
    "name": "str", "type": "str", "argv": "str", "env": "str",
    "annotation": "str", "params": "str", "kernel": "str",
    "visited_url": "str", "file_url": "str", "current_url": "str",
    "pid": "number", "time": "number",
    "version": "number", "pnode": "number",
}

#: Identity pseudo-attributes: legal in queries even though the OEM
#: graph materializes no atoms for them (``ref`` carries them instead).
_PSEUDO_ATOMS = frozenset({"version", "pnode"})

# -- rules -------------------------------------------------------------------

PL100 = rule(
    "PL100", ERROR, "PQL syntax error",
    "The query text failed to lex or parse.")
PL101 = rule(
    "PL101", ERROR, "unknown edge label or attribute",
    "A path step names a label that is neither a known cross-reference "
    "edge nor a known attribute; the step can never match anything.")
PL102 = rule(
    "PL102", ERROR, "non-reference attribute traversed as an edge",
    "A plain-value attribute (e.g. 'name') appears where an edge must "
    "be followed; such a step always yields the empty set.")
PL103 = rule(
    "PL103", ERROR, "unbound variable",
    "A path is rooted at a name that is neither 'Provenance' nor a "
    "previously bound FROM variable.")
PL104 = rule(
    "PL104", WARNING, "shadowed or rebound FROM variable",
    "A FROM binding reuses a name that is already bound; the earlier "
    "binding becomes unreachable in this scope.")
PL105 = rule(
    "PL105", WARNING, "unknown Provenance member",
    "The member after 'Provenance' is not a known object TYPE; the "
    "binding is likely empty.")
PL106 = rule(
    "PL106", ERROR, "malformed Provenance root path",
    "'Provenance' must be followed by a plain member name "
    "(e.g. Provenance.file); quantified, reversed or missing members "
    "fail at evaluation time.")
PL107 = rule(
    "PL107", WARNING, "unbounded closure",
    "A '*', '+' or '{n,}' quantifier walks the transitive closure; on "
    "deep ancestry graphs this is the dominant query cost.  Consider a "
    "bounded '{n,m}' quantifier.")
PL108 = rule(
    "PL108", ERROR, "unknown function",
    "A call names neither an aggregate (count/sum/avg/min/max) nor a "
    "scalar (len/lower/upper/basename).")
PL109 = rule(
    "PL109", ERROR, "wrong function arity",
    "Aggregates and scalars take exactly one argument.")
PL110 = rule(
    "PL110", WARNING, "type-incompatible comparison",
    "The two operands can never hold values of a comparable type, so "
    "the predicate is always false (PQL comparisons are existential "
    "and never coerce).")
PL111 = rule(
    "PL111", WARNING, "constant predicate",
    "The predicate compares literals (or is a bare literal); it does "
    "not depend on any bound variable.")
PL112 = rule(
    "PL112", WARNING, "query can never return rows",
    "LIMIT 0 (or an always-false WHERE clause) makes the result "
    "statically empty.")
PL113 = rule(
    "PL113", WARNING, "unused FROM binding",
    "A bound variable is never referenced; the binding still multiplies "
    "the nested-loop join by its member count.")

#: Engine pre-pass: which PQLError subclass each blocking code maps to.
_EXCEPTIONS = {
    "PL100": PQLSyntaxError,
    "PL101": PQLNameError,
    "PL102": PQLNameError,
    "PL103": PQLNameError,
    "PL106": PQLError,
    "PL108": PQLNameError,
    "PL109": PQLError,
}


# -- vocabulary --------------------------------------------------------------


def _attr_constants() -> dict[str, str]:
    """All string attribute constants declared on :class:`Attr`."""
    return {name: value for name, value in vars(Attr).items()
            if name.isupper() and isinstance(value, str)}


@dataclass(frozen=True)
class Vocabulary:
    """The label universe a query is checked against.

    ``edges`` are labels conventionally carrying cross-references,
    ``atoms`` are plain-value attribute labels, ``members`` the
    Provenance root members.  All labels are lowercase, the way the OEM
    graph exposes them.
    """

    edges: frozenset[str]
    atoms: frozenset[str]
    members: frozenset[str]

    @classmethod
    def default(cls) -> "Vocabulary":
        """The static vocabulary from ``repro.core.records``."""
        edges = frozenset(a.lower() for a in Attr.XREF_ATTRS)
        framing = {Attr.BEGINTXN.lower(), Attr.ENDTXN.lower()}
        atoms = frozenset(v.lower() for v in _attr_constants().values()
                          if v.lower() not in edges
                          and v.lower() not in framing) | _PSEUDO_ATOMS
        members = frozenset(
            value.lower() for name, value in vars(ObjType).items()
            if name.isupper() and isinstance(value, str)) | {"node"}
        return cls(edges, atoms, members)

    def for_graph(self, graph) -> "Vocabulary":
        """Widen with labels actually present in an OEM graph, so the
        engine pre-pass never rejects a query the evaluator could
        satisfy (applications may record attributes beyond the core
        vocabulary).

        Graphs maintaining label indexes (``atom_labels`` /
        ``edge_labels``, as :class:`repro.pql.oem.OEMGraph` does) are
        read in O(labels); anything else falls back to a full node scan.
        """
        atom_labels = getattr(graph, "atom_labels", None)
        edge_labels = getattr(graph, "edge_labels", None)
        if callable(atom_labels) and callable(edge_labels):
            edges = set(self.edges) | edge_labels()
            atoms = set(self.atoms) | atom_labels()
        else:
            edges = set(self.edges)
            atoms = set(self.atoms)
            for node in graph.nodes():
                edges.update(node.edges)
                atoms.update(node.atoms)
        members = set(self.members) | set(graph.member_names())
        return Vocabulary(frozenset(edges), frozenset(atoms),
                          frozenset(members))

    def knows(self, label: str) -> bool:
        return label in self.edges or label in self.atoms


# -- entry points ------------------------------------------------------------


def check_query_text(text: str, vocabulary: Optional[Vocabulary] = None,
                     source: str = "<query>") -> list[Diagnostic]:
    """Parse and check raw query text; parse failures become PL100."""
    from repro.pql.parser import parse
    try:
        query = parse(text)
    except PQLSyntaxError as exc:
        return [PL100.at(str(exc), source,
                         exc.line or 0, exc.column or 0)]
    return check_query(query, vocabulary, source)


def check_query(query: ast.Query, vocabulary: Optional[Vocabulary] = None,
                source: str = "<query>") -> list[Diagnostic]:
    """Check one parsed query; returns positioned diagnostics."""
    checker = _QueryChecker(vocabulary or Vocabulary.default(), source)
    checker.check(query)
    return checker.diagnostics


def raise_on_errors(diagnostics: Iterable[Diagnostic]) -> None:
    """Engine pre-pass: turn the first blocking diagnostic into the
    matching ``PQLError`` subclass, positioned."""
    for diag in diagnostics:
        if diag.severity != ERROR:
            continue
        exc_cls = _EXCEPTIONS.get(diag.code, PQLError)
        if exc_cls is PQLSyntaxError:
            raise exc_cls(diag.message, diag.line or 1, diag.column)
        raise exc_cls(f"[{diag.code}] {diag.message}",
                      diag.line or None, diag.column if diag.line else None)


# -- the walker --------------------------------------------------------------


class _QueryChecker:
    def __init__(self, vocabulary: Vocabulary, source: str):
        self.vocabulary = vocabulary
        self.source = source
        self.diagnostics: list[Diagnostic] = []
        self._used: set[str] = set()

    def _emit(self, registered, message: str, node=None) -> None:
        line = getattr(node, "line", 0) if node is not None else 0
        column = getattr(node, "column", 0) if node is not None else 0
        self.diagnostics.append(
            registered.at(message, self.source, line, column))

    # -- queries -------------------------------------------------------------

    def check(self, query: ast.Query,
              outer: frozenset[str] = frozenset()) -> None:
        scope: set[str] = set(outer)
        bound_here: set[str] = set()
        for binding in query.bindings:
            self._from_path(binding.path, scope)
            if binding.name in bound_here:
                self._emit(PL104, f"variable {binding.name!r} is bound "
                           "twice in this FROM clause", binding)
            elif binding.name in scope:
                self._emit(PL104, f"variable {binding.name!r} shadows an "
                           "enclosing binding", binding)
            scope.add(binding.name)
            bound_here.add(binding.name)
        for item in query.select:
            self._expr(item.expr, scope)
        if query.where is not None:
            self._expr(query.where, scope)
            self._constant_predicate(query.where)
        if query.order is not None:
            self._expr(query.order.expr, scope)
        if query.limit == 0:
            self._emit(PL112, "LIMIT 0 always returns the empty result",
                       query)
        for binding in query.bindings:
            if binding.name in bound_here and binding.name not in self._used:
                self._emit(PL113, f"binding {binding.name!r} is never used",
                           binding)

    # -- paths ---------------------------------------------------------------

    def _from_path(self, path: ast.Path, scope: set[str]) -> None:
        steps = list(path.steps)
        if path.root == _ROOT:
            steps = self._root_member(path, steps)
        elif path.root in scope:
            self._used.add(path.root)
        else:
            self._emit(PL103, f"unbound variable {path.root!r}", path)
            return
        for step in steps:
            self._edge_step(step, atom_ok=False)

    def _expr_path(self, path: ast.Path, scope: set[str]) -> None:
        steps = list(path.steps)
        if path.root == _ROOT:
            steps = self._root_member(path, steps)
        elif path.root in scope:
            self._used.add(path.root)
        else:
            self._emit(PL103, f"unbound variable {path.root!r}", path)
            return
        for index, step in enumerate(steps):
            self._edge_step(step, atom_ok=(index == len(steps) - 1))

    def _root_member(self, path: ast.Path,
                     steps: list[ast.Step]) -> list[ast.Step]:
        """Validate the member step after 'Provenance'; returns the
        remaining steps."""
        if not steps:
            self._emit(PL106, "'Provenance' needs a member, e.g. "
                       "Provenance.file", path)
            return []
        first = steps[0]
        member = (first.edge.name
                  if isinstance(first.edge, ast.EdgeName)
                  and not first.edge.reverse else None)
        if member is None or first.quantifier != ast.Quantifier():
            self._emit(PL106, "the first step after 'Provenance' must be "
                       "a plain member name", path)
            return []
        if member not in self.vocabulary.members:
            self._emit(PL105, f"unknown Provenance member {member!r} "
                       "(no object carries that TYPE)", first.edge)
        return steps[1:]

    def _edge_step(self, step: ast.Step, atom_ok: bool) -> None:
        names = (step.edge.options if isinstance(step.edge, ast.EdgeAlt)
                 else (step.edge,))
        plain_read = (atom_ok and len(names) == 1 and not names[0].reverse
                      and step.quantifier == ast.Quantifier())
        for edge in names:
            label = edge.name
            if label in self.vocabulary.edges:
                continue
            if label in self.vocabulary.atoms:
                if not plain_read:
                    self._emit(PL102, f"attribute {label!r} holds plain "
                               "values, not references; it cannot be "
                               "traversed", edge)
                continue
            self._emit(PL101, f"unknown edge label or attribute {label!r}",
                       edge)
        if step.quantifier.maximum is None:
            labels = "|".join(edge.name for edge in names)
            self._emit(PL107, f"unbounded closure over {labels!r} walks "
                       "the whole ancestry; consider a bounded "
                       "quantifier like {1,8}", names[0])

    # -- expressions ---------------------------------------------------------

    def _expr(self, expr: ast.Expr, scope: set[str]) -> None:
        if isinstance(expr, ast.Literal):
            return
        if isinstance(expr, ast.PathValue):
            self._expr_path(expr.path, scope)
            return
        if isinstance(expr, ast.Compare):
            self._expr(expr.left, scope)
            self._expr(expr.right, scope)
            self._compare_types(expr)
            return
        if isinstance(expr, ast.BoolOp):
            for operand in expr.operands:
                self._expr(operand, scope)
            return
        if isinstance(expr, (ast.Not, ast.Neg)):
            self._expr(expr.operand, scope)
            return
        if isinstance(expr, ast.Arith):
            self._expr(expr.left, scope)
            self._expr(expr.right, scope)
            return
        if isinstance(expr, ast.Call):
            self._call(expr, scope)
            return
        if isinstance(expr, ast.InQuery):
            self._expr(expr.needle, scope)
            self.check(expr.query, frozenset(scope))
            return
        if isinstance(expr, ast.ExistsQuery):
            self.check(expr.query, frozenset(scope))
            return

    def _call(self, expr: ast.Call, scope: set[str]) -> None:
        if expr.name not in _AGGREGATES and expr.name not in _SCALARS:
            self._emit(PL108, f"unknown function {expr.name!r}", expr)
        elif len(expr.args) != 1:
            self._emit(PL109, f"{expr.name}() takes exactly one argument, "
                       f"got {len(expr.args)}", expr)
        for arg in expr.args:
            self._expr(arg, scope)

    # -- static typing -------------------------------------------------------

    def _compare_types(self, expr: ast.Compare) -> None:
        left = self._type_of(expr.left)
        right = self._type_of(expr.right)
        if expr.op == "like":
            for side, name in ((left, "left"), (right, "right")):
                if side is not None and side != "str":
                    self._emit(PL110, f"LIKE requires strings; the {name} "
                               f"operand is always {side}", expr)
            return
        if left is not None and right is not None and left != right:
            self._emit(PL110, f"comparing {left} with {right} is always "
                       "false (PQL never coerces)", expr)

    def _constant_predicate(self, where: ast.Expr) -> None:
        """Flag WHERE clauses (or top-level conjuncts) built purely from
        literals."""
        conjuncts = (list(where.operands)
                     if isinstance(where, ast.BoolOp) else [where])
        for conjunct in conjuncts:
            if isinstance(conjunct, ast.Literal):
                self._emit(PL111, "bare literal used as a predicate",
                           where)
            elif (isinstance(conjunct, ast.Compare)
                    and isinstance(conjunct.left, ast.Literal)
                    and isinstance(conjunct.right, ast.Literal)
                    and self._type_of(conjunct.left)
                    == self._type_of(conjunct.right)):
                self._emit(PL111, "predicate compares two literals; it "
                           "is constant", conjunct)

    def _type_of(self, expr: ast.Expr) -> Optional[str]:
        """Static type category, or None when unknowable.

        Categories mirror the evaluator's comparison rules: bool, number
        (int/float interchangeable), str, bytes.
        """
        if isinstance(expr, ast.Literal):
            value = expr.value
            if isinstance(value, bool):
                return "bool"
            if isinstance(value, (int, float)):
                return "number"
            if isinstance(value, str):
                return "str"
            if isinstance(value, bytes):
                return "bytes"
            return None
        if isinstance(expr, (ast.Arith, ast.Neg)):
            return "number"
        if isinstance(expr, (ast.BoolOp, ast.Not, ast.Compare,
                             ast.InQuery, ast.ExistsQuery)):
            return "bool"
        if isinstance(expr, ast.Call):
            if expr.name in _STRING_SCALARS:
                return "str"
            if expr.name in _AGGREGATES or expr.name == "len":
                return "number"
            return None
        if isinstance(expr, ast.PathValue) and expr.path.steps:
            last = expr.path.steps[-1]
            if (isinstance(last.edge, ast.EdgeName)
                    and not last.edge.reverse
                    and last.quantifier == ast.Quantifier()):
                return _ATOM_TYPES.get(last.edge.name)
        return None
