"""passlint: static analysis for PQL queries and layer discipline.

The dynamic enforcement story (``repro.core.analyzer`` at record time,
``repro.storage.fsck`` after the fact) catches violations once they have
cost something.  This package rejects them before they run:

* :mod:`repro.lint.pqlcheck` walks a parsed PQL query and reports
  unknown edge labels and attributes, unbound or shadowed variables,
  type-incompatible comparisons, always-empty constructs, and
  unbounded-closure cost hazards -- every diagnostic positioned with
  the lexer's line/column.
* :mod:`repro.lint.layercheck` walks the ``repro`` source tree itself
  and enforces the paper's Figure 2 layering as import rules, confines
  transaction framing to the storage/NFS layers, and rejects mutation
  of finalized provenance records.

Diagnostics carry ``PL###`` codes (PL1xx = PQL, PL2xx = layering) and
come in two severities; reporters render them as text or JSON.
"""

from repro.lint.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    LintReport,
    Rule,
    all_rules,
    render_json,
    render_text,
    rule,
)
from repro.lint.layercheck import check_source, check_tree
from repro.lint.pqlcheck import Vocabulary, check_query, check_query_text

__all__ = [
    "ERROR",
    "WARNING",
    "Diagnostic",
    "LintReport",
    "Rule",
    "Vocabulary",
    "all_rules",
    "check_query",
    "check_query_text",
    "check_source",
    "check_tree",
    "render_json",
    "render_text",
    "rule",
]
