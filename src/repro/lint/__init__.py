"""passlint: static analysis for PQL queries and layer discipline.

The dynamic enforcement story (``repro.core.analyzer`` at record time,
``repro.storage.fsck`` after the fact) catches violations once they have
cost something.  This package rejects them before they run:

* :mod:`repro.lint.pqlcheck` walks a parsed PQL query and reports
  unknown edge labels and attributes, unbound or shadowed variables,
  type-incompatible comparisons, always-empty constructs, and
  unbounded-closure cost hazards -- every diagnostic positioned with
  the lexer's line/column.
* :mod:`repro.lint.layercheck` walks the ``repro`` source tree itself
  and enforces the paper's Figure 2 layering as import rules, confines
  transaction framing to the storage/NFS layers, and rejects mutation
  of finalized provenance records.
* :mod:`repro.lint.callgraph` builds a whole-program symbol table and
  module call graph (plain ``ast``, nothing under analysis imported),
  and :mod:`repro.lint.flowcheck` runs dataflow rules over it: layer
  discipline through objects, cross-layer private-state reaches, batch
  escape/mutation across boundaries, shard-readiness of shared state,
  and dynamic imports -- the preconditions the sharded storage tier
  relies on.

Diagnostics carry ``PL###`` codes (PL1xx = PQL, PL2xx = layering,
PL3xx = dataflow) and come in two severities; reporters render them as
text or JSON.  ``lint: disable=PL###`` trailing comments suppress a
diagnostic on their line; unused suppressions are themselves reported.
"""

from repro.lint.callgraph import (
    Program,
    build_program,
    graph_payload,
    render_graph_dot,
)
from repro.lint.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    LintReport,
    Rule,
    all_rules,
    render_json,
    render_text,
    rule,
)
from repro.lint.flowcheck import analyze_tree, check_program
from repro.lint.layercheck import check_source, check_tree
from repro.lint.pqlcheck import Vocabulary, check_query, check_query_text

__all__ = [
    "ERROR",
    "WARNING",
    "Diagnostic",
    "LintReport",
    "Program",
    "Rule",
    "Vocabulary",
    "all_rules",
    "analyze_tree",
    "build_program",
    "check_program",
    "check_query",
    "check_query_text",
    "check_source",
    "check_tree",
    "graph_payload",
    "render_graph_dot",
    "render_json",
    "render_text",
    "rule",
]
