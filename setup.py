"""Legacy setup shim: enables `pip install -e .` without the wheel package."""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": ["passv2 = repro.cli:main"],
    },
)
