#!/usr/bin/env python3
"""Quickstart: boot a provenance-aware machine, run a pipeline, query it.

Walks the seven PASSv2 components (paper Figure 2) with a real write,
then answers the three classic provenance questions: how was this object
created, what is its full ancestry, and what descends from an input.

Run:  python examples/quickstart.py
"""

from repro.core.records import Attr
from repro.query.helpers import ancestry_refs, descendant_refs, describe
from repro.system import System


def main() -> None:
    # 1. Boot: a PASS-enabled volume at /pass, a plain one at /scratch.
    system = System.boot()
    print(f"booted: {system}")

    # 2. Run a two-stage shell pipeline: generate | transform > report.
    def generate(sc):
        fd = sc.open("/pass/measurements.csv", "w")
        sc.write(fd, b"sensor,reading\na,10\nb,20\nc,30\n")
        sc.close(fd)
        sc.write(sc.stdout, b"generated")
        return 0

    def transform(sc):
        sc.read(sc.stdin)                     # wait for the generator
        fd = sc.open("/pass/measurements.csv", "r")
        rows = sc.read(fd).decode().splitlines()[1:]
        sc.close(fd)
        total = sum(int(row.split(",")[1]) for row in rows)
        out = sc.open("/pass/report.txt", "w")
        sc.write(out, f"total reading: {total}\n".encode())
        sc.close(out)
        return 0

    system.register_program("/pass/bin/generate", generate)
    system.register_program("/pass/bin/transform", transform)
    with system.process(argv=["shell"]) as shell:
        rfd, wfd = shell.pipe()
        shell.spawn("/pass/bin/generate", stdout=wfd)
        shell.close(wfd)
        shell.spawn("/pass/bin/transform", stdin=rfd)
        shell.close(rfd)

    # 3. Flush the provenance pipeline: Lasagna log -> Waldo -> database.
    inserted = system.sync()
    print(f"Waldo ingested {inserted} provenance records")
    kernel = system.kernel
    print(f"analyzer: {kernel.analyzer.records_out} records admitted, "
          f"{kernel.analyzer.duplicates_dropped} duplicates dropped, "
          f"{kernel.analyzer.freezes} freezes")

    # 4. Query with PQL (section 5.7): the full ancestry of the report.
    rows = system.query("""
        select Ancestor
        from Provenance.file as Report
             Report.input* as Ancestor
        where Report.name = "/pass/report.txt"
    """)
    print("\nancestry of /pass/report.txt (PQL):")
    for node in rows:
        print(f"  {node.ref}  type={node.type}  name={node.name}")

    # 5. The same via the helper API, plus a descendant (taint) query.
    dbs = system.databases()
    report_ref = system.find_by_name("/pass/report.txt")[0]
    csv_ref = system.find_by_name("/pass/measurements.csv")[0]
    print(f"\nancestors of report: {len(ancestry_refs(dbs, report_ref))}")
    print(f"descendants of measurements.csv: "
          f"{len(descendant_refs(dbs, csv_ref))}")

    # 6. Describe one object: every record Waldo holds about it.
    info = describe(dbs, report_ref)
    print("\nrecords describing the report:")
    for attr, values in sorted(info["attrs"].items()):
        if attr != Attr.MD5:
            print(f"  {attr} = {values}")

    print(f"\nsimulated elapsed time: {system.elapsed():.4f}s")


if __name__ == "__main__":
    main()
