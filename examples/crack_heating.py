#!/usr/bin/env python3
"""The paper's section 3.3 PA-Python use cases: thermography analysis.

The Iowa State scenario: a data-acquisition system wrote XML experiment
logs; an analysis script reads *every* log to decide which to use, then
plots crack heating against crack length for one stress classification.

Use case 1 (data origin): PASS alone blames the plot on all the XML
files (the script read them all); PA-Python identifies the documents
actually *used*, and the layering ties those documents back to their
source files.

Use case 2 (process validation): a library upgrade introduced a bug in
the calculation routine.  Which result files are suspect?  Only outputs
descended from BOTH the new library version (a PASS-layer fact) and the
calculation routine (a PA-Python-layer fact).

Run:  python examples/crack_heating.py
"""

from repro.core.records import Attr, ObjType
from repro.query.helpers import ancestry_refs
from repro.system import System
from repro.workloads.thermography import (
    buggy_crack_heating_curve,
    generate_logs,
    run_analysis,
)


def write_file(system: System, path: str, data: bytes) -> None:
    """Create a file (with parent directories) from a helper process."""
    with system.process() as proc:
        parts = path.strip("/").split("/")[:-1]
        prefix = ""
        for part in parts:
            prefix += "/" + part
            if not proc.exists(prefix):
                proc.mkdir(prefix)
        fd = proc.open(path, "w")
        proc.write(fd, data)
        proc.close(fd)


def names_types(dbs, refs):
    names, types = set(), set()
    for db in dbs:
        for ref in refs:
            for record in db.records_of(ref.pnode):
                if record.attr == Attr.NAME:
                    names.add(str(record.value))
                elif record.attr == Attr.TYPE:
                    types.add(str(record.value))
    return names, types


def main() -> None:
    system = System.boot()

    print("Generating XML experiment logs (the data-acquisition system)...")
    generate_logs(system, "/pass/thermo", experiments=24, specimens=6)

    print("Use case 1: which XML documents fed the 'high stress' plot?")
    stats = run_analysis(system, "/pass/thermo", "/pass/plot-high.dat",
                         stress_class="high")
    system.sync()
    print(f"  the script read {stats['total']} XML files, "
          f"used {stats['used']}")

    dbs = system.databases()
    db = system.database("pass")
    plot = db.find_by_name("/pass/plot-high.dat")[0]
    ancestors = ancestry_refs(dbs, plot)
    names, types = names_types(dbs, ancestors)

    xml_ancestors = sorted(name for name in names
                           if name.endswith(".xml"))
    print(f"  PASS layer alone would blame all "
          f"{len(xml_ancestors)} XML inputs the process read")

    # The layered answer: the raw XML documents are exactly three hops
    # above the curve invocation (parsed result -> parse invocation ->
    # raw document), and they are the PYOBJECTs at that depth.
    used_docs = system.query("""
        select Doc.name
        from Provenance.invocation as Inv
             Inv.input{3} as Doc
        where Inv.name = "crack_heating#%d"
              and Doc.type = "PYOBJECT"
              and Doc.name like "%%.xml"
    """ % (stats["total"] + 1))
    used_docs = sorted(str(doc) for doc in used_docs)
    print(f"  PA-Python layer: exactly {len(used_docs)} documents were "
          f"used:")
    for name in used_docs[:5]:
        print(f"    {name}")
    if len(used_docs) > 5:
        print(f"    ... and {len(used_docs) - 5} more")
    assert len(used_docs) == stats["used"] < stats["total"]

    print("\nUse case 2: the library upgrade introduced a bug -- which "
          "plots are suspect?")
    write_file(system, "/pass/lib/calcroutines-1.0.py", b"# v1.0 good")
    write_file(system, "/pass/lib/calcroutines-2.0.py", b"# v2.0 BUGGY")
    run_analysis(system, "/pass/thermo", "/pass/plot-before.dat",
                 library_path="/pass/lib/calcroutines-1.0.py")
    run_analysis(system, "/pass/thermo", "/pass/plot-after.dat",
                 calc=buggy_crack_heating_curve,
                 library_path="/pass/lib/calcroutines-2.0.py")
    system.sync()
    db = system.database("pass")

    suspects = []
    for plot_name in ("/pass/plot-before.dat", "/pass/plot-after.dat"):
        ref = db.find_by_name(plot_name)[0]
        names, types = names_types(system.databases(),
                                   ancestry_refs(system.databases(), ref))
        from_new_library = "/pass/lib/calcroutines-2.0.py" in names
        through_calc_routine = "crack_heating" in names
        verdict = (from_new_library and through_calc_routine)
        print(f"  {plot_name}: new library={from_new_library}, "
              f"calc routine={through_calc_routine} -> "
              f"{'SUSPECT' if verdict else 'ok'}")
        if verdict:
            suspects.append(plot_name)
    assert suspects == ["/pass/plot-after.dat"]
    print("\nOnly the post-upgrade plot descends from both the new "
          "library and the calculation routine -- neither layer alone "
          "could say that.")


if __name__ == "__main__":
    main()
