#!/usr/bin/env python3
"""The paper's Figure 1 / section 3.1 scenario, end to end.

A workstation runs the First Provenance Challenge workflow under
PA-Kepler, reading inputs from one PA-NFS server and writing the atlas
images to a second.  Between Monday's and Wednesday's runs a colleague
silently modifies an input *directly on the input server* -- invisible
to the workflow engine.  Wednesday's output differs, and only the
*integrated* (three-layer) provenance can explain why:

* Kepler alone: both runs look identical (same operators, parameters);
* PASS alone: the output depends on "some files", but the processing
  stages connecting the changed input to the changed output are opaque;
* layered: the ancestry diff names the exact input version that changed.

Run:  python examples/anomaly_detection.py
"""

from repro.apps.kepler.challenge import (
    build_challenge,
    ensure_dirs,
    generate_inputs,
)
from repro.apps.kepler.director import run_workflow
from repro.core.records import Attr
from repro.kernel.clock import SimClock
from repro.nfs import NFSClient, NFSServer
from repro.query.helpers import newest_ref_by_name, provenance_diff
from repro.system import System


def run_challenge(workstation, tag):
    workflow = build_challenge("/inputs/data", f"/local/work-{tag}",
                               "/outputs")
    ensure_dirs(workstation, f"/local/work-{tag}")
    director = run_workflow(workstation, workflow, recording="pass",
                            engine_path="/local/bin/kepler")
    return director


def read_atlas(workstation):
    with workstation.process() as proc:
        fd = proc.open("/outputs/atlas-x.gif", "r")
        data = proc.read(fd)
        proc.close(fd)
    return data


def sync_everything(workstation, clients, servers):
    for client in clients:
        client.sync()
    workstation.sync()
    for server_sys in servers:
        server_sys.sync()


def main() -> None:
    # The Figure 1 topology: workstation + two NFS servers, one clock.
    clock = SimClock()
    input_server_sys = System.boot(hostname="input-server", clock=clock,
                                   pass_volumes=("expin",),
                                   plain_volumes=())
    output_server_sys = System.boot(hostname="output-server", clock=clock,
                                    pass_volumes=("expout",),
                                    plain_volumes=())
    workstation = System.boot(hostname="workstation", clock=clock,
                              pass_volumes=("local",), plain_volumes=())
    in_client = NFSClient(workstation, NFSServer(input_server_sys, "expin"),
                          mountpoint="/inputs", name="nfs-in")
    out_client = NFSClient(workstation,
                           NFSServer(output_server_sys, "expout"),
                           mountpoint="/outputs", name="nfs-out")
    clients = [in_client, out_client]
    servers = [input_server_sys, output_server_sys]

    ensure_dirs(workstation, "/inputs/data")
    generate_inputs(workstation, "/inputs/data")

    print("Monday: running the Provenance Challenge workflow...")
    run_challenge(workstation, "monday")
    monday_atlas = read_atlas(workstation)
    sync_everything(workstation, clients, servers)
    dbs = (workstation.databases() + input_server_sys.databases()
           + output_server_sys.databases())
    monday_ref = newest_ref_by_name(dbs, "/outputs/atlas-x.gif")

    print("Tuesday: a colleague quietly modifies anatomy2.img on the "
          "input server...")
    with input_server_sys.process(argv=["colleague-edit"]) as proc:
        fd = proc.open("/expin/data/anatomy2.img", "r+")
        proc.read(fd)
        proc.write(fd, b"RECALIBRATED-SENSOR-DATA" * 40)
        proc.close(fd)

    print("Wednesday: running the workflow again...")
    in_client.revalidate("/inputs/data/anatomy2.img")
    run_challenge(workstation, "wednesday")
    wednesday_atlas = read_atlas(workstation)
    sync_everything(workstation, clients, servers)
    dbs = (workstation.databases() + input_server_sys.databases()
           + output_server_sys.databases())
    wednesday_ref = newest_ref_by_name(dbs, "/outputs/atlas-x.gif")

    assert monday_atlas != wednesday_atlas
    print("\nThe outputs differ!  Why?\n")

    diff = provenance_diff(dbs, monday_ref, wednesday_ref)

    def names(refs):
        found = {}
        for ref in refs:
            for db in dbs:
                for record in db.records_of(ref.pnode):
                    if record.attr == Attr.NAME:
                        found.setdefault(str(record.value),
                                         set()).add(ref.version)
        return found

    print("Ancestors only in Wednesday's run:")
    culprits = []
    for name, versions in sorted(names(diff["only_right"]).items()):
        marker = ""
        if "anatomy" in name and "/expin" in name or "/inputs" in name:
            if "anatomy" in name:
                marker = "   <-- the modified input!"
                culprits.append(name)
        print(f"  {name} (versions {sorted(versions)}){marker}")
    print(f"\nShared ancestry: {len(diff['common'])} objects "
          f"(the unchanged inputs, reference image, binaries...)")
    assert any("anatomy2" in name for name in culprits)
    print("\nThe layered provenance pinpointed the silently modified "
          "input that single-layer provenance could not.")


if __name__ == "__main__":
    main()
