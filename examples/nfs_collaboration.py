#!/usr/bin/env python3
"""PA-NFS in action: shared storage, crash-orphaned provenance, branching.

Three vignettes on one exported PASS volume:

1. two workstations collaborate through the server, and a query on the
   *server* reconstructs which client process produced which file;
2. a client dies mid-transaction -- the server's Waldo orphans the
   half-shipped bundle instead of ingesting it;
3. close-to-open consistency lets both clients version the same file
   from the same base -- the server detects the branch.

Run:  python examples/nfs_collaboration.py
"""

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord
from repro.kernel.clock import SimClock
from repro.nfs import NFSClient, NFSServer, Network
from repro.query.helpers import ancestry_refs, newest_ref_by_name
from repro.system import System


def boot():
    clock = SimClock()
    server_sys = System.boot(hostname="fileserver", clock=clock,
                             pass_volumes=("export",), plain_volumes=())
    server = NFSServer(server_sys, "export")
    clients = []
    for index, host in enumerate(("alice-ws", "bob-ws")):
        client_sys = System.boot(hostname=host, clock=clock,
                                 pass_volumes=(f"local{index}",),
                                 plain_volumes=())
        client = NFSClient(client_sys, server,
                           Network(clock, client_sys.kernel.params.net),
                           mountpoint="/shared", name=f"nfs-{host}")
        clients.append((client_sys, client))
    return server_sys, server, clients


def vignette_collaboration(server_sys, server, clients):
    print("=== 1. Collaboration through the export ===")
    (alice_sys, alice), (bob_sys, bob) = clients
    with alice_sys.process(argv=["alice-simulator"]) as proc:
        fd = proc.open("/shared/model-params.txt", "w")
        proc.write(fd, b"alpha=0.3 beta=7\n")
        proc.close(fd)
    bob.revalidate("/shared/model-params.txt")
    with bob_sys.process(argv=["bob-runner"]) as proc:
        fd = proc.open("/shared/model-params.txt", "r")
        params = proc.read(fd)
        proc.close(fd)
        out = proc.open("/shared/model-output.dat", "w")
        proc.write(out, b"RESULT(" + params.strip() + b")")
        proc.close(out)
    alice.sync()
    bob.sync()
    server_sys.sync()
    dbs = server_sys.databases()
    out_ref = newest_ref_by_name(dbs, "/shared/model-output.dat")
    names = set()
    for db in dbs:
        for ref in ancestry_refs(dbs, out_ref):
            for record in db.records_of(ref.pnode):
                if record.attr == Attr.NAME:
                    names.add(str(record.value))
    print(f"  server-side ancestry of model-output.dat: {sorted(names)}")
    assert "alice-simulator" in names
    assert "bob-runner" in names
    print("  both clients' processes are visible to the server.\n")


def vignette_orphaned_txn(server_sys, server):
    print("=== 2. A client dies mid-transaction ===")
    subject = ObjectRef(server.volume.pnodes.allocate(), 0)
    txn = server.op_begintxn(subject)
    server.op_passprov(txn, [
        ProvenanceRecord(subject, Attr.NAME, "half-shipped-dataset"),
    ])
    # ... the client crashes here: no ENDTXN ever arrives.
    server.volume.lasagna.log.flush()
    server.volume.lasagna.log.rotate()
    waldo = server_sys.tier.waldo("export")
    waldo.drain()
    in_db = {r.value for r in waldo.database.all_records()
             if r.attr == Attr.NAME}
    print(f"  'half-shipped-dataset' in database: "
          f"{'half-shipped-dataset' in in_db}")
    print(f"  orphaned records held aside: {len(waldo.orphaned)}")
    assert "half-shipped-dataset" not in in_db
    assert waldo.orphaned
    print("  the transaction framing kept the database clean.\n")


def vignette_branching(server_sys, server, clients):
    print("=== 3. Close-to-open version branching ===")
    (alice_sys, alice), (bob_sys, bob) = clients
    with alice_sys.process() as proc:
        fd = proc.open("/shared/notes.txt", "w")
        proc.write(fd, b"base notes")
        proc.close(fd)
    # Both open the same version before either writes.
    alice_shell = alice_sys.kernel.spawn_shell(["alice-editor"])
    bob_shell = bob_sys.kernel.spawn_shell(["bob-editor"])
    fd_a = alice_shell.open("/shared/notes.txt", "r+")
    fd_b = bob_shell.open("/shared/notes.txt", "r+")
    alice_shell.read(fd_a)
    bob_shell.read(fd_b)
    alice_shell.write(fd_a, b"alice's edits")
    bob_shell.write(fd_b, b"bob's edits")
    alice_shell.close(fd_a)
    bob_shell.close(fd_b)
    alice_sys.kernel.reap(alice_shell.proc, 0)
    bob_sys.kernel.reap(bob_shell.proc, 0)
    alice.sync()
    bob.sync()
    server_sys.sync()
    db = server_sys.database("export")
    branches = [r for r in db.all_records() if r.attr == Attr.BRANCH_OF]
    print(f"  BRANCH_OF records at the server: {len(branches)}")
    assert branches
    print("  the server noticed two independent copies of one version\n"
          "  (the paper: tolerable under NFS's weak consistency).")


def main() -> None:
    server_sys, server, clients = boot()
    vignette_collaboration(server_sys, server, clients)
    vignette_orphaned_txn(server_sys, server)
    vignette_branching(server_sys, server, clients)


if __name__ == "__main__":
    main()
