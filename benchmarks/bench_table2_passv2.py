"""Table 2 (left half): elapsed-time overhead, PASSv2 vs vanilla ext3.

Paper row / our row, per workload::

    Benchmark           Ext3    PASSv2   Overhead   (paper overhead)
    Linux Compile       1746    2018     15.6%
    Postmark             453     505     11.5%
    Mercurial Activity   614     756     23.1%
    Blast                 69     69.5     0.7%
    PA-Kepler           1246    1264      1.4%

Absolute seconds differ (our substrate is a scaled simulator); the
regenerated quantity is the overhead column and its ordering.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALES, PAPER_TABLE2, print_row
from repro.workloads import (
    ALL_WORKLOADS,
    BlastWorkload,
    CompileWorkload,
    KeplerWorkload,
    MercurialWorkload,
    PostmarkWorkload,
)
from repro.workloads.base import overhead_pct, run_local


def _bench_one(benchmark, workload_cls, table2_rows):
    workload = workload_cls(scale=BENCH_SCALES[workload_cls.name])

    def experiment():
        base = run_local(workload, provenance=False)
        passv2 = run_local(workload, provenance=True)
        return base, passv2

    base, passv2 = benchmark.pedantic(experiment, rounds=1, iterations=1)
    overhead = overhead_pct(base, passv2)
    table2_rows.setdefault("local", {})[workload.name] = (
        base.elapsed, passv2.elapsed, overhead)
    print()
    print_row(workload.name, f"{base.elapsed:.1f}s",
              f"{passv2.elapsed:.1f}s", f"{overhead:.1f}%",
              f"(paper {PAPER_TABLE2[workload.name]['local']}%)")
    return base, passv2, overhead


@pytest.mark.benchmark(group="table2-passv2")
def test_linux_compile(benchmark, table2_rows):
    _, _, overhead = _bench_one(benchmark, CompileWorkload, table2_rows)
    assert 5.0 < overhead < 35.0


@pytest.mark.benchmark(group="table2-passv2")
def test_postmark(benchmark, table2_rows):
    _, _, overhead = _bench_one(benchmark, PostmarkWorkload, table2_rows)
    assert 4.0 < overhead < 30.0


@pytest.mark.benchmark(group="table2-passv2")
def test_mercurial_activity(benchmark, table2_rows):
    _, _, overhead = _bench_one(benchmark, MercurialWorkload, table2_rows)
    assert 10.0 < overhead < 45.0


@pytest.mark.benchmark(group="table2-passv2")
def test_blast(benchmark, table2_rows):
    _, _, overhead = _bench_one(benchmark, BlastWorkload, table2_rows)
    assert overhead < 3.0


@pytest.mark.benchmark(group="table2-passv2")
def test_pa_kepler(benchmark, table2_rows):
    _, _, overhead = _bench_one(benchmark, KeplerWorkload, table2_rows)
    assert overhead < 4.0


@pytest.mark.benchmark(group="table2-passv2")
def test_shape_matches_paper(benchmark, table2_rows):
    """The paper's qualitative claims for the left half of Table 2."""
    def collect():
        rows = table2_rows.get("local", {})
        missing = [cls.name for cls in ALL_WORKLOADS if cls.name not in rows]
        for cls in ALL_WORKLOADS:
            if cls.name in missing:
                workload = cls(scale=BENCH_SCALES[cls.name])
                base = run_local(workload, provenance=False)
                passv2 = run_local(workload, provenance=True)
                rows[workload.name] = (base.elapsed, passv2.elapsed,
                                       overhead_pct(base, passv2))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print("\n--- Table 2 (PASSv2 vs ext3), regenerated ---")
    print_row("Benchmark", "Ext3", "PASSv2", "Overhead", "Paper")
    for name in PAPER_TABLE2:
        base_s, pass_s, ovh = rows[name]
        print_row(name, f"{base_s:.1f}", f"{pass_s:.1f}", f"{ovh:.1f}%",
                  f"{PAPER_TABLE2[name]['local']}%")
    ovh = {name: rows[name][2] for name in rows}
    # Mercurial suffers most; compile next; CPU-bound are ~free.
    assert ovh["Mercurial Activity"] > ovh["Linux Compile"]
    assert ovh["Linux Compile"] > ovh["Blast"]
    assert ovh["Postmark"] > ovh["PA-Kepler"]
    assert ovh["Blast"] < 3.0 and ovh["PA-Kepler"] < 4.0
    # Everything lands in the paper's "1% to 23%" reasonable-cost band
    # (with slack for the simulated substrate).
    assert all(value < 45.0 for value in ovh.values())
