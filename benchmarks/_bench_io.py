"""Shared BENCH_results.json plumbing for the benchmark scripts.

One results file holds every benchmark's payload::

    {"schema": "repro-bench-suite/1",
     "suites": {"ingest": {...},            # repro-bench-ingest/1
                "incremental_query": {...},  # repro-bench-incremental/1
                "workloads": {...}}}         # repro-bench/1

:func:`merge_results` upgrades a legacy single-payload file (the
pre-suite format, one benchmark's payload at top level) in place, filing
the old payload under the suite name its schema implies, so running the
benchmarks in any order converges on the same document.  ``repro bench``
and each benchmark's ``--out`` all go through here.
"""

from __future__ import annotations

import json
import os

#: Payload schema prefix -> suite name in the merged document.
SUITE_NAMES = {
    "repro-bench-ingest": "ingest",
    "repro-bench-incremental": "incremental_query",
    "repro-bench-obs": "obs_overhead",
    "repro-bench-pql": "pql_perf",
    "repro-bench": "workloads",
}

SUITE_SCHEMA = "repro-bench-suite/1"


def suite_name_for(schema: object) -> str | None:
    """Suite key a payload files under, from its ``schema`` field."""
    if not isinstance(schema, str):
        return None
    return SUITE_NAMES.get(schema.partition("/")[0])


def merge_results(path: str, name: str, payload: dict) -> dict:
    """Merge one benchmark payload into the results file at ``path``.

    Existing suite entries under other names survive; a legacy
    single-payload file is wrapped into the suite document first.
    Returns the merged document (also written to ``path``).
    """
    document: dict = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            document = {}
    if not (isinstance(document, dict)
            and isinstance(document.get("suites"), dict)):
        legacy = document if isinstance(document, dict) else None
        document = {"schema": SUITE_SCHEMA, "suites": {}}
        if legacy:
            legacy_name = suite_name_for(legacy.get("schema"))
            if legacy_name is not None:
                document["suites"][legacy_name] = legacy
    document["schema"] = SUITE_SCHEMA
    document["suites"][name] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document
