"""Shared helpers for the benchmark suite.

Every benchmark runs one paper experiment (a table row or a figure
scenario) inside ``benchmark.pedantic(..., rounds=1)`` -- the simulation
is deterministic, so repeated rounds would only re-measure Python speed.
Each module prints the regenerated table in the paper's layout, with the
paper's numbers alongside for comparison.
"""

from __future__ import annotations

import pytest

from repro.system import BootConfig

#: Boot configuration for timing-sensitive benchmarks: metrics off so
#: the measurement excludes instrumentation cost.
QUIET_BOOT = BootConfig(observability=False)

#: Workload scales used by the benchmark suite: full-size where the
#: simulation is fast, reduced for the CPU-heavy ones (the simulated
#: *ratios* are scale-stable; see EXPERIMENTS.md).
BENCH_SCALES = {
    "Linux Compile": 1.0,
    "Postmark": 1.0,
    "Mercurial Activity": 1.0,
    "Blast": 0.25,
    "PA-Kepler": 0.25,
}

#: Paper Table 2: elapsed-time overheads, percent.
PAPER_TABLE2 = {
    "Linux Compile": {"local": 15.6, "nfs": 11.0},
    "Postmark": {"local": 11.5, "nfs": 16.8},
    "Mercurial Activity": {"local": 23.1, "nfs": 8.7},
    "Blast": {"local": 0.7, "nfs": 1.9},
    "PA-Kepler": {"local": 1.4, "nfs": 2.5},
}

#: Paper Table 3: space overheads as % of the ext3 bytes.
PAPER_TABLE3 = {
    "Linux Compile": {"prov": 6.9, "total": 18.4},
    "Postmark": {"prov": 0.1, "total": 0.1},
    "Mercurial Activity": {"prov": 1.8, "total": 3.4},
    "Blast": {"prov": 1.1, "total": 3.8},
    "PA-Kepler": {"prov": 4.7, "total": 14.2},
}


def print_row(*cells, widths=(22, 12, 12, 12, 14)) -> None:
    line = "".join(str(cell).ljust(width)
                   for cell, width in zip(cells, widths))
    print(line)


@pytest.fixture(scope="session")
def table2_rows():
    """Accumulates rows across benchmarks so the last one can print the
    assembled table."""
    return {}


@pytest.fixture(scope="session")
def table3_rows():
    return {}
