"""PQL engine micro-benchmarks (real wall-clock, multiple rounds).

Not a paper table -- engineering benchmarks guarding the query engine's
performance on graphs the size the workloads produce: name lookup,
bounded traversal, full-closure ancestry, and aggregate scans.
"""

from __future__ import annotations

import pytest

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.pql.engine import QueryEngine

FILES = 2000
FAN_IN = 4


def build_graph() -> QueryEngine:
    """A layered build-like DAG: sources -> processes -> objects -> link."""
    records = []

    def R(pnode, attr, value):
        records.append(ProvenanceRecord(ObjectRef(pnode, 0), attr, value))

    # 1..FILES: source files; FILES+1..2*FILES: processes;
    # 2*FILES+1..3*FILES: outputs; 3*FILES+1: the final link.
    for index in range(1, FILES + 1):
        R(index, Attr.TYPE, ObjType.FILE)
        R(index, Attr.NAME, f"/src/file{index}.c")
    for index in range(1, FILES + 1):
        proc = FILES + index
        R(proc, Attr.TYPE, ObjType.PROCESS)
        R(proc, Attr.NAME, "cc")
        for hop in range(FAN_IN):
            source = (index + hop - 1) % FILES + 1
            R(proc, Attr.INPUT, ObjectRef(source, 0))
        out = 2 * FILES + index
        R(out, Attr.TYPE, ObjType.FILE)
        R(out, Attr.NAME, f"/obj/file{index}.o")
        R(out, Attr.INPUT, ObjectRef(proc, 0))
    final = 3 * FILES + 1
    R(final, Attr.TYPE, ObjType.FILE)
    R(final, Attr.NAME, "/vmlinux")
    for index in range(1, FILES + 1):
        R(final, Attr.INPUT, ObjectRef(2 * FILES + index, 0))
    return QueryEngine.from_records(records)


@pytest.fixture(scope="module")
def engine():
    return build_graph()


@pytest.mark.benchmark(group="pql-perf")
def test_perf_graph_construction(benchmark):
    engine = benchmark(build_graph)
    assert len(engine.graph) == 3 * FILES + 1


@pytest.mark.benchmark(group="pql-perf")
def test_perf_name_equality_scan(benchmark, engine):
    rows = benchmark(
        engine.execute,
        'select F from Provenance.file as F where F.name = "/vmlinux"')
    assert len(rows) == 1


@pytest.mark.benchmark(group="pql-perf")
def test_perf_bounded_traversal(benchmark, engine):
    rows = benchmark(
        engine.execute,
        'select A from Provenance.file as F F.input{1,2} as A '
        'where F.name = "/obj/file1.o"')
    assert len(rows) == 1 + FAN_IN


@pytest.mark.benchmark(group="pql-perf")
def test_perf_full_ancestry_closure(benchmark, engine):
    rows = benchmark(
        engine.execute,
        'select A from Provenance.file as F F.input* as A '
        'where F.name = "/vmlinux"')
    assert len(rows) == 3 * FILES + 1


@pytest.mark.benchmark(group="pql-perf")
def test_perf_aggregate_count(benchmark, engine):
    rows = benchmark(
        engine.execute,
        "select count(P) from Provenance.process as P")
    assert rows == [FILES]


@pytest.mark.benchmark(group="pql-perf")
def test_perf_like_scan(benchmark, engine):
    rows = benchmark(
        engine.execute,
        'select F from Provenance.file as F '
        'where F.name like "/obj/file1%.o" limit 50')
    assert rows
