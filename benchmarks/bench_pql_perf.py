"""Planner vs naive PQL at million-record scale (wall-clock).

The tentpole measurement for the query optimizer: one federated live
engine (PR 9 shape -- records routed across several shard databases,
``QueryEngine.live`` over their union) answers the same queries twice,
once through the cost-based planner (secondary indexes + materialized
ancestry view + CSR adjacency) and once through the naive pre-planner
path (member scans plus the old name-only pushdown), via the engine's
per-call ``optimize=`` override.  Both arms share one graph, every
query's answer is asserted identical across arms, and timings exclude
the one-time warmup (lazy index builds, first closure computes, CSR
snapshot) -- the benchmark measures steady-state query latency, which
is what "queries stay interactive at millions of records" means.

The synthetic graph is a build-like DAG: ``chains`` independent
pipelines of (source, process, output) groups, each process reading
its chain's recent outputs (closure depth) plus a fan of shared source
files (edge density), every file carrying ``md5`` and ``mtime`` atoms.
Each chain ends in a ``snapshot`` node (a checkpoint object whose
``input`` is the chain's final output).  Point lookups hit ``md5``
equality on files (no index in the naive path); ancestry closures walk
``input*`` from a snapshot selected by md5 -- the planner answers with
an equality-index probe plus the cached closure, while the naive
nested-loop join expands the closure under *every* snapshot candidate
before WHERE filters, which is exactly the blowup the paper's query
workloads hit pre-planner.  (Snapshots root the closure workloads
because naive PQL pays that expansion per member-class candidate:
rooting them on the 2x-files-sized ``file`` class would make the
baseline arm take hours at this scale, not because the comparison
would be unfair.)

Run directly (CI does; no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_pql_perf.py \
        --out BENCH_results.json

Exits nonzero if indexed point lookups or ancestry closures are not at
least ``--min-speedup`` times faster (default 5.0), or if fewer than
``--min-records`` records were generated (default 1,000,000).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.pql.engine import QueryEngine
from repro.storage.database import ProvenanceDatabase

try:
    from _bench_io import merge_results
except ImportError:  # imported as part of a package-style run
    from benchmarks._bench_io import merge_results


def synthesize(files: int, fan: int, depth_links: int,
               chains: int) -> list[ProvenanceRecord]:
    """A build-like DAG as a flat record stream.

    Group ``i`` (0-based) holds source ``3i+1``, process ``3i+2``,
    output ``3i+3``.  Groups with the same ``i % chains`` form one
    pipeline: each process reads its source, ``fan`` shared sources
    from anywhere earlier, and the previous ``depth_links`` outputs of
    its own chain -- so a chain tail's ``input*`` closure covers the
    whole chain without leaking into the others (sources are leaves).
    One ``snapshot`` node per chain references the chain's last
    output, giving the closure workloads a realistic small root class.
    """
    records = []
    add = records.append

    def R(pnode, attr, value):
        add(ProvenanceRecord(ObjectRef(pnode, 0), attr, value))

    for i in range(files):
        src, proc, out = 3 * i + 1, 3 * i + 2, 3 * i + 3
        R(src, Attr.TYPE, ObjType.FILE)
        R(src, Attr.NAME, f"/src/file{i}.c")
        R(src, "MD5", f"s{i:07d}")
        R(src, "MTIME", float(i))
        R(proc, Attr.TYPE, ObjType.PROCESS)
        R(proc, Attr.NAME, "cc")
        R(proc, Attr.INPUT, ObjectRef(src, 0))
        for k in range(fan):
            j = (i * 31 + k * 97) % (i + 1)       # some earlier group
            R(proc, Attr.INPUT, ObjectRef(3 * j + 1, 0))
        for d in range(1, depth_links + 1):
            j = i - d * chains                    # same chain, d back
            if j >= 0:
                R(proc, Attr.INPUT, ObjectRef(3 * j + 3, 0))
        R(out, Attr.TYPE, ObjType.FILE)
        R(out, Attr.NAME, f"/out/file{i}.o")
        R(out, "MD5", f"o{i:07d}")
        R(out, "MTIME", float(i) + 0.5)
        R(out, Attr.INPUT, ObjectRef(proc, 0))
    for c in range(min(chains, files)):
        tail = files - 1 - (files - 1 - c) % chains   # last group of c
        snap = 3 * files + c + 1
        R(snap, Attr.TYPE, "SNAPSHOT")
        R(snap, Attr.NAME, f"/snap/chain{c}")
        R(snap, "MD5", f"t{c:07d}")
        R(snap, Attr.INPUT, ObjectRef(3 * tail + 3, 0))
    return records


def shard_databases(records, shards: int) -> list[ProvenanceDatabase]:
    """Route the stream across shard databases by subject pnode, the
    PR 9 storage-tier layout the federated engine merges at query."""
    buckets: list[list] = [[] for _ in range(shards)]
    for record in records:
        buckets[record.subject.pnode % shards].append(record)
    databases = []
    for index, bucket in enumerate(buckets):
        database = ProvenanceDatabase(f"bench-s{index}")
        database.insert_many(bucket)
        databases.append(database)
    return databases


def _timed(engine: QueryEngine, queries, optimize: bool,
           rounds: int = 1) -> float:
    started = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            engine.execute(query, optimize=optimize)
    return time.perf_counter() - started


def _assert_arms_agree(engine: QueryEngine, queries) -> None:
    for query in queries:
        planned = engine.execute_refs(query)
        engine._optimize, saved = False, engine._optimize
        try:
            naive = engine.execute_refs(query)
        finally:
            engine._optimize = saved
        assert sorted(map(repr, planned)) == sorted(map(repr, naive)), \
            f"planned and naive answers disagree for: {query}"


def run(files: int = 42000, fan: int = 8, depth_links: int = 4,
        chains: int = 256, lookups: int = 24, closures: int = 12,
        rounds: int = 3, shards: int = 4) -> dict:
    """Build the graph, verify planned ≡ naive, time both arms."""
    records = synthesize(files, fan, depth_links, chains)
    databases = shard_databases(records, shards)

    build_started = time.perf_counter()
    engine = QueryEngine.live(databases)
    build_s = time.perf_counter() - build_started

    # Query sets.  Point lookups: md5 equality spread over the outputs.
    # Ancestry: input* closure from a chain's snapshot, picked by md5.
    # Bounded: a depth-limited walk (exercises the CSR arrays).
    point_queries = [
        ('select F from Provenance.file as F '
         f'where F.md5 = "o{(files // lookups) * n:07d}"')
        for n in range(lookups)
    ]
    roots = range(min(closures, chains, files))
    ancestry_queries = [
        ('select count(A) from Provenance.snapshot as S, '
         f'S.input* as A where S.md5 = "t{c:07d}"')
        for c in roots
    ]
    name_ancestry = [
        ('select count(A) from Provenance.snapshot as S, '
         f'S.input* as A where S.name = "/snap/chain{c}"')
        for c in list(roots)[:4]
    ]
    bounded_queries = [
        ('select count(A) from Provenance.snapshot as S, '
         'S.input{1,4} as A '
         f'where S.md5 = "t{c:07d}"')
        for c in list(roots)[:4]
    ]
    everything = (point_queries + ancestry_queries + name_ancestry
                  + bounded_queries)

    # Ground truth *and* warmup in one pass: every query runs once per
    # arm (lazy index builds, closure computes, and the CSR snapshot
    # all happen here), and the answers must match exactly.
    warm_started = time.perf_counter()
    _assert_arms_agree(engine, everything)
    warmup_s = time.perf_counter() - warm_started

    point_naive = _timed(engine, point_queries, optimize=False)
    point_planned = _timed(engine, point_queries, optimize=True)
    ancestry_naive = _timed(engine, ancestry_queries, optimize=False,
                            rounds=rounds)
    ancestry_planned = _timed(engine, ancestry_queries, optimize=True,
                              rounds=rounds)
    name_naive = _timed(engine, name_ancestry, optimize=False,
                        rounds=rounds)
    name_planned = _timed(engine, name_ancestry, optimize=True,
                          rounds=rounds)
    bounded_naive = _timed(engine, bounded_queries, optimize=False,
                           rounds=rounds)
    bounded_planned = _timed(engine, bounded_queries, optimize=True,
                             rounds=rounds)

    def ratio(naive, planned):
        return naive / planned if planned else float("inf")

    point_speedup = ratio(point_naive, point_planned)
    ancestry_speedup = ratio(ancestry_naive, ancestry_planned)
    return {
        "schema": "repro-bench-pql/1",
        "records_total": len(records),
        "nodes": len(engine.graph),
        "shards": shards,
        "chains": chains,
        "build_s": build_s,
        "warmup_s": warmup_s,
        "point_lookup": {
            "queries": len(point_queries),
            "naive_s": point_naive,
            "planned_s": point_planned,
            "speedup": point_speedup,
        },
        "ancestry": {
            "queries": len(ancestry_queries),
            "rounds": rounds,
            "naive_s": ancestry_naive,
            "planned_s": ancestry_planned,
            "speedup": ancestry_speedup,
        },
        "ancestry_by_name": {
            # Informational: with the root already name-pushed in both
            # arms, this isolates the materialized view against the
            # per-query BFS alone.
            "naive_s": name_naive,
            "planned_s": name_planned,
            "speedup": ratio(name_naive, name_planned),
        },
        "bounded_traverse": {
            # Informational: depth-limited walks ride the CSR arrays.
            "naive_s": bounded_naive,
            "planned_s": bounded_planned,
            "speedup": ratio(bounded_naive, bounded_planned),
        },
        "counters": engine.catalog.counters(),
        # The gated metric: both headline paths must clear the bar.
        "speedup": min(point_speedup, ancestry_speedup),
    }


def test_planner_beats_naive():
    """Pytest entry point (small scale): same loop, same direction."""
    result = run(files=1500, chains=32, lookups=8, closures=4, rounds=2)
    assert result["speedup"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--files", type=int, default=42000,
                        help="build groups (each: source, process, "
                             "output; ~24 records per group)")
    parser.add_argument("--fan", type=int, default=8)
    parser.add_argument("--depth-links", type=int, default=4)
    parser.add_argument("--chains", type=int, default=256)
    parser.add_argument("--lookups", type=int, default=24)
    parser.add_argument("--closures", type=int, default=12)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--out", default=None,
                        help="write the result payload to this JSON file")
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--min-records", type=int, default=1_000_000)
    args = parser.parse_args(argv)

    result = run(files=args.files, fan=args.fan,
                 depth_links=args.depth_links, chains=args.chains,
                 lookups=args.lookups, closures=args.closures,
                 rounds=args.rounds, shards=args.shards)
    print(f"pql perf: {result['records_total']} records, "
          f"{result['nodes']} nodes across {result['shards']} shards "
          f"(build {result['build_s']:.1f}s, warmup "
          f"{result['warmup_s']:.1f}s)")
    for section in ("point_lookup", "ancestry", "ancestry_by_name",
                    "bounded_traverse"):
        entry = result[section]
        print(f"  {section}: naive {entry['naive_s']:.3f}s, planned "
              f"{entry['planned_s']:.3f}s -> {entry['speedup']:.1f}x")
    print(f"  gated speedup (min of point, ancestry): "
          f"{result['speedup']:.1f}x")
    if args.out and args.out != "-":
        merge_results(args.out, "pql_perf", result)
        print(f"merged into {args.out}")
    if result["records_total"] < args.min_records:
        print(f"FAIL: generated {result['records_total']} records, "
              f"need >= {args.min_records}", file=sys.stderr)
        return 1
    if result["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {result['speedup']:.2f}x below the "
              f"{args.min_speedup}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
