"""Batched vs per-record ingest path on a churn workload (wall-clock).

The tentpole measurement for the batched ingest pipeline: the same
record-dense churn workload runs on two identically parameterized
systems, one booted with ``batching=True`` (observer event batches ->
``Analyzer.submit_batch`` -> ``Distributor.flush_batch`` -> log group
commit -> bulk Waldo drain) and one with ``batching=False`` (one
pipeline traversal per record, no group commit -- the pre-batching
pipeline).

The workload is chosen to stress every batched stage: chunked writes
(duplicate-elimination storms for the analyzer's hot-triple cache),
process churn (identity bursts), cross-process overwrites (freeze
traffic), and DPAPI bulk disclosure (big proto batches through
``disclosed_write``).

Semantics are asserted, not assumed: both arms must produce *identical
database contents* -- every record, in insertion order, compared modulo
the two things that legitimately differ across boots (volume ids inside
pnode numbers, and simulated-clock TIME values).

Run directly (CI does; no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_ingest.py \
        --out BENCH_results.json

Exits nonzero if the batched arm is not at least ``--min-speedup`` times
the unbatched arm's records/sec (default 2.0), or if fewer than
``--min-records`` records reached the database (default 10000).
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

from repro.core.pnode import ObjectRef, TRANSIENT_VOLUME, local_of, volume_of
from repro.core.records import Attr
from repro.system import BootConfig, System

try:
    from _bench_io import merge_results
except ImportError:  # imported as part of a package-style run
    from benchmarks._bench_io import merge_results

#: Metrics off in both arms: measure the pipeline work itself.
BATCHED = BootConfig(observability=False)
UNBATCHED = BootConfig(observability=False, batching=False)

#: Small-chunk writes per new file (duplicate-heavy INPUT traffic).
CHUNKS_PER_FILE = 2
#: Disclosed records attached to each file (records-only pass_write).
DISCLOSED_PER_FILE = 96
#: One bulk DPAPI disclosure per round (a provenance-aware application
#: checkpointing its semantic state in one call).
BURST_RECORDS = 6000


def churn_round(system: System, round_index: int, files: int) -> None:
    """One round: new files (chunked writes + DPAPI disclosure), one
    bulk disclosure burst, then a different process overwrites half of
    the previous round's files."""
    with system.process(argv=[f"churner-{round_index}"]) as proc:
        dpapi = proc.dpapi
        if round_index == 0:
            proc.mkdir("/pass/churn")
        for index in range(files):
            fd = proc.open(f"/pass/churn/r{round_index}-f{index}.dat", "w")
            chunk = bytes([65 + (index % 26)]) * 64
            for _ in range(CHUNKS_PER_FILE):
                proc.write(fd, chunk)
            disclosed = dpapi.record_many(
                fd, Attr.ANNOTATION,
                (f"r{round_index}.f{index}.k{key}"
                 for key in range(DISCLOSED_PER_FILE)))
            dpapi.pass_write(fd, records=disclosed)
            proc.close(fd)
        # The burst: one records-only pass_write disclosing the round's
        # whole semantic state against one file.  No data moves, so no
        # WAP ordering point intervenes -- the window where group
        # commit (batched arm) gets to choose the flush boundary.
        fd = proc.open(f"/pass/churn/r{round_index}-f0.dat", "a")
        burst = dpapi.record_many(
            fd, Attr.ANNOTATION,
            (f"r{round_index}.burst.{key}" for key in range(BURST_RECORDS)))
        dpapi.pass_write(fd, records=burst)
        proc.close(fd)
    if round_index > 0:
        with system.process(argv=[f"rewriter-{round_index}"]) as proc:
            for index in range(files // 2):
                fd = proc.open(
                    f"/pass/churn/r{round_index - 1}-f{index}.dat", "w")
                proc.write(fd, b"overwrite" * 16)
                proc.close(fd)


def _canon_ref(ref: ObjectRef) -> tuple:
    """Volume-id-free identity: pnode numbers embed the globally unique
    volume id, which differs between the two boots; the transient/PASS
    distinction plus the local counter plus the version is what must
    match."""
    transient = volume_of(ref.pnode) == TRANSIENT_VOLUME
    return (transient, local_of(ref.pnode), ref.version)


def canonical_database(system: System) -> list[tuple]:
    """Every record of every volume, in insertion order, canonicalized.

    TIME values are masked (group commit legitimately shifts simulated
    timestamps); everything else -- subjects, attributes, values,
    cross-references, order -- must be byte-for-byte identical.
    """
    out: list[tuple] = []
    for database in system.databases():
        for record in database.all_records():
            value = record.value
            if isinstance(value, ObjectRef):
                canon_value: object = ("ref",) + _canon_ref(value)
            elif record.attr == Attr.TIME:
                canon_value = "<time>"
            else:
                canon_value = value
            out.append((_canon_ref(record.subject), record.attr,
                        canon_value))
    return out


def run_arm(config: BootConfig, rounds: int, files: int) -> dict:
    """Run the churn workload on one arm; returns timing + contents."""
    system = System.boot(config=config)
    # Measure the pipeline, not the collector: the cyclic GC's gen-2
    # passes scan the whole live heap (the database grows throughout),
    # charging each arm a fee proportional to how *long* it runs rather
    # than how much work it does.  Both arms run collector-free and pay
    # one explicit collection outside the timed region.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        for round_index in range(rounds):
            churn_round(system, round_index, files)
        records = system.sync()
        elapsed = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()
    log = system.kernel.volume("pass").lasagna.log
    return {
        "records": records,
        "elapsed_s": elapsed,
        "records_per_sec": records / elapsed if elapsed else float("inf"),
        "log_flushes": log.flushes,
        "group_commits": log.batch_flushes,
        "contents": canonical_database(system),
    }


def run_shard_arm(shards: int, rounds: int, files: int) -> dict:
    """The churn workload on one sharded-tier arm.

    Reported throughput is the *storage tier's* critical path, measured
    with real wall clocks per shard: seconds each shard spent in log
    append/flush plus Waldo drain.  With one worker per shard the
    tier's elapsed storage time is the max over shards; at ``shards=1``
    the max IS the serial total, so the two arms share a unit.  (The
    whole-pipeline elapsed time is reported too, but capture --
    observer/analyzer/distributor -- is ~65% of it and out of this
    tier's hands; Amdahl caps any full-pipeline claim regardless of
    shard count, and the GIL serializes pure-Python capture anyway.)
    """
    system = System.boot(config=BootConfig(observability=False,
                                           shards=shards))
    system.tier.enable_wall_timing()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        for round_index in range(rounds):
            churn_round(system, round_index, files)
        records = system.sync()
        elapsed = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()
    shard_seconds = system.tier.storage_seconds("pass")
    critical_path = max(shard_seconds)
    serial = sum(shard_seconds)
    return {
        "shards": shards,
        "records": records,
        "elapsed_s": elapsed,
        "shard_storage_seconds": shard_seconds,
        "storage_critical_path_s": critical_path,
        "storage_serial_s": serial,
        "storage_records_per_sec": (records / critical_path
                                    if critical_path else float("inf")),
        "parallel_drains": system.tier.parallel_drains,
        # Cross-shard interleaving legitimately reorders the global
        # record stream; per-subject order is a per-shard property.
        # Equality is therefore on the sorted multiset.
        "contents": sorted(canonical_database(system), key=repr),
    }


def run_sharded(rounds: int = 10, files: int = 120,
                shard_counts: tuple = (1, 2, 4)) -> dict:
    """The sharded-tier suite: same churn workload at 1/2/4 shards.

    The headline ``speedup`` is storage-tier critical-path throughput
    at the widest arm over the single-shard arm; every arm must drain
    the same records into the union of its shard databases (sorted
    multiset equality -- the sharded analogue of the batched arms'
    exact-order gate).
    """
    run_shard_arm(1, 1, files)          # warmup (discarded)
    arms = [run_shard_arm(count, rounds, files)
            for count in shard_counts]
    base = arms[0]
    for arm in arms[1:]:
        assert arm["records"] == base["records"], \
            "sharded arms drained different record counts"
        assert arm["contents"] == base["contents"], \
            (f"shards={arm['shards']} database contents differ from "
             f"shards={base['shards']}")
    widest = arms[-1]
    payload = {
        "schema": "repro-bench-ingest-sharded/1",
        "workload": "churn",
        "rounds": rounds,
        "files_per_round": files,
        "shard_counts": list(shard_counts),
        "records_total": base["records"],
        "speedup": (widest["storage_records_per_sec"]
                    / base["storage_records_per_sec"]),
    }
    for arm in arms:
        del arm["contents"]
        payload[f"shards_{arm['shards']}"] = arm
    return payload


def run(rounds: int = 10, files: int = 120, repeats: int = 3) -> dict:
    """Both arms; returns the BENCH_results payload.

    Each repeat runs the two arms back to back (unbatched, then
    batched), so both halves of a pair see the same machine state, and
    the pair's elapsed ratio cancels whatever clock-frequency or cache
    drift that state carries.  The *median* pair ratio is the headline
    speedup -- per-arm minima are the classic low-noise estimators for
    a single arm, but a ratio of minima taken from different pairs can
    mix a drifted-fast run of one arm with a steady run of the other.
    The database-equality gate is asserted on *every* pair, not just
    the reported one.
    """
    # Warmup pair (discarded): the first measurement after unrelated
    # load (CI runs the test suite immediately before this) sees cold
    # caches and a throttled clock; both arms pay it here instead.
    run_arm(UNBATCHED, 1, files)
    run_arm(BATCHED, 1, files)
    pairs = []
    for _ in range(max(1, repeats)):
        u = run_arm(UNBATCHED, rounds, files)
        b = run_arm(BATCHED, rounds, files)
        assert u["records"] == b["records"], \
            "arms drained different record counts"
        assert u["contents"] == b["contents"], \
            "batched and unbatched database contents differ"
        pairs.append((u["elapsed_s"] / b["elapsed_s"], u, b))
    pairs.sort(key=lambda pair: pair[0])
    speedup, unbatched, batched = pairs[len(pairs) // 2]
    for _, u, b in pairs:
        del u["contents"], b["contents"]
    return {
        "schema": "repro-bench-ingest/1",
        "workload": "churn",
        "rounds": rounds,
        "files_per_round": files,
        "repeats": max(1, repeats),
        "chunks_per_file": CHUNKS_PER_FILE,
        "disclosed_per_file": DISCLOSED_PER_FILE,
        "burst_records": BURST_RECORDS,
        "records_total": batched["records"],
        "unbatched": unbatched,
        "batched": batched,
        "speedup": speedup,
    }


def test_batched_matches_and_beats_unbatched():
    """Pytest entry point (small scale): same arms, same equality gate."""
    result = run(rounds=4, files=40, repeats=1)
    assert result["records_total"] > 0
    assert result["batched"]["group_commits"] > 0
    assert result["speedup"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--files", type=int, default=120,
                        help="new files per round (half get overwritten)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="back-to-back arm pairs; the median pair "
                             "ratio is the reported speedup")
    parser.add_argument("--out", default=None,
                        help="merge the result payload into this JSON file")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--min-records", type=int, default=10000)
    parser.add_argument("--sharded", action="store_true",
                        help="run the sharded-tier suite (1/2/4 shards, "
                             "storage critical-path throughput) instead "
                             "of the batched-vs-unbatched arms")
    args = parser.parse_args(argv)

    if args.sharded:
        result = run_sharded(rounds=args.rounds, files=args.files)
        print(f"sharded churn workload: {result['records_total']} records "
              f"over {args.rounds} rounds")
        for count in result["shard_counts"]:
            arm = result[f"shards_{count}"]
            print(f"  shards={count}: storage critical path "
                  f"{arm['storage_critical_path_s']:.3f}s "
                  f"(serial {arm['storage_serial_s']:.3f}s, "
                  f"{arm['storage_records_per_sec']:,.0f} rec/s, "
                  f"{arm['parallel_drains']} parallel drains)")
        print(f"  speedup at {result['shard_counts'][-1]} shards: "
              f"{result['speedup']:.1f}x")
        if args.out and args.out != "-":
            merge_results(args.out, "ingest_sharded", result)
            print(f"merged into {args.out}")
        if result["records_total"] < args.min_records:
            print(f"FAIL: drained {result['records_total']} records, "
                  f"need >= {args.min_records}", file=sys.stderr)
            return 1
        if result["speedup"] < args.min_speedup:
            print(f"FAIL: sharded speedup {result['speedup']:.2f}x below "
                  f"the {args.min_speedup}x gate", file=sys.stderr)
            return 1
        return 0

    result = run(rounds=args.rounds, files=args.files,
                 repeats=args.repeats)
    print(f"churn workload: {result['records_total']} records over "
          f"{args.rounds} rounds")
    print(f"  unbatched (per-record): {result['unbatched']['elapsed_s']:.3f}s"
          f"  ({result['unbatched']['records_per_sec']:,.0f} rec/s)")
    print(f"  batched (group commit): {result['batched']['elapsed_s']:.3f}s"
          f"  ({result['batched']['records_per_sec']:,.0f} rec/s, "
          f"{result['batched']['group_commits']} group commits)")
    print(f"  speedup: {result['speedup']:.1f}x")
    if args.out and args.out != "-":
        merge_results(args.out, "ingest", result)
        print(f"merged into {args.out}")
    if result["records_total"] < args.min_records:
        print(f"FAIL: drained {result['records_total']} records, need "
              f">= {args.min_records}", file=sys.stderr)
        return 1
    if result["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {result['speedup']:.2f}x below the "
              f"{args.min_speedup}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
