"""Table 3: space overheads of PASSv2 provenance.

Paper layout::

    Benchmark          Ext3(MB)  Provenance        Provenance+Indexes
    Linux Compile      1287.9    88.9 (6.9%)       236.8 (18.4%)
    Postmark           1289.5    0.8 (0.1%)        1.7 (0.1%)
    Mercurial Activity  858.7    15.4 (1.8%)       28.9 (3.4%)
    Blast                 5.6    0.1 (1.1%)        0.2 (3.8%)
    PA-Kepler             3.5    0.2 (4.7%)        0.5 (14.2%)

The base column is the data the workload wrote; "Provenance" is the
Waldo database's main store, "+Indexes" adds the attribute/name/xref
indexes.  Shape claims: everything modest; Postmark negligible (few
records per megabyte); the compile and the provenance-disclosing
PA-Kepler workload are the most provenance-dense; indexes roughly
double-to-triple the database.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALES, PAPER_TABLE3, print_row
from repro.workloads import ALL_WORKLOADS
from repro.workloads.base import run_local


def _space_row(workload_cls):
    workload = workload_cls(scale=BENCH_SCALES[workload_cls.name])
    result = run_local(workload, provenance=True)
    base = max(result.bytes_written, 1)
    prov_pct = 100.0 * result.provenance_bytes / base
    total_pct = 100.0 * result.provenance_total / base
    return result, prov_pct, total_pct


@pytest.mark.benchmark(group="table3-space")
def test_space_overheads(benchmark, table3_rows):
    def experiment():
        rows = {}
        for cls in ALL_WORKLOADS:
            rows[cls.name] = _space_row(cls)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table3_rows.update(rows)
    print("\n--- Table 3 (space overheads), regenerated ---")
    print_row("Benchmark", "Data(MB)", "Prov(MB)", "Prov%",
              "Total% (paper)")
    for name, (result, prov_pct, total_pct) in rows.items():
        paper = PAPER_TABLE3[name]
        print_row(name,
                  f"{result.bytes_written / 1e6:.1f}",
                  f"{result.provenance_bytes / 1e6:.2f}",
                  f"{prov_pct:.2f}%",
                  f"{total_pct:.2f}% ({paper['prov']}/{paper['total']})")

    prov = {name: row[1] for name, row in rows.items()}
    total = {name: row[2] for name, row in rows.items()}
    # Postmark is the least provenance-dense workload by a wide margin.
    assert prov["Postmark"] == min(prov.values())
    assert prov["Postmark"] < 0.5
    # The compile (many processes and files per byte) is the densest,
    # and the provenance-disclosing PA-Kepler run beats the bulk-I/O
    # workloads despite writing almost no data.
    assert prov["Linux Compile"] == max(prov.values())
    assert prov["PA-Kepler"] > prov["Postmark"]
    assert prov["PA-Kepler"] > prov["Blast"]
    # Database overhead stays modest (paper: < 7%) and indexes add a
    # same-order amount (paper: total < 19%).
    assert all(value < 12.0 for value in prov.values())
    assert all(value < 30.0 for value in total.values())
    for name in prov:
        if prov[name] > 0:
            assert 1.2 < total[name] / prov[name] < 4.0


@pytest.mark.benchmark(group="table3-space")
def test_index_accounting_consistent(benchmark):
    """The database's byte accounting matches the records it holds."""
    from repro.storage import codec
    from repro.workloads import BlastWorkload

    def experiment():
        from repro.system import System
        from tests.conftest import write_file
        system = System.boot()
        write_file(system, "/pass/x", b"abc")
        system.sync()
        return system.database("pass")

    database = benchmark.pedantic(experiment, rounds=1, iterations=1)
    recomputed = sum(codec.encoded_size(record)
                     for record in database.all_records())
    assert recomputed == database.main_bytes
    assert database.index_bytes > 0
