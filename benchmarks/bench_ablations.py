"""Ablations of the design choices DESIGN.md calls out.

1. **Duplicate elimination** (section 5.4): programs do I/O in small
   blocks; without the analyzer's dedup the record stream explodes.
2. **Log + Waldo vs direct database writes** (section 5.6): PASSv1
   wrote provenance straight into indexed databases -- "neither
   flexible nor scalable"; the ablation regresses Lasagna to
   synchronous random-placement writes and measures the hit.
3. **Stackable double buffering** (section 7): re-run Postmark with
   the cache-halving disabled to isolate how much of its overhead the
   stacking accounts for (the paper's 14.8-of-16.8 decomposition).
4. **WAP** (section 5.6): without write-ahead ordering, a crash leaves
   unprovenanced data recovery cannot even flag.
"""

from __future__ import annotations

import pytest

from repro.system import System
from repro.workloads import MercurialWorkload, PostmarkWorkload
from repro.workloads.base import overhead_pct, run_local, run_nfs


@pytest.mark.benchmark(group="ablations")
def test_dedup_ablation(benchmark):
    """Small-block I/O floods the pipeline without dedup."""
    def experiment():
        system = System.boot()
        with system.process(argv=["blockwriter"]) as proc:
            fd = proc.open("/pass/big", "w")
            for _ in range(256):
                proc.write(fd, b"\x00" * 4096)     # 1 MB in 4 KB blocks
            proc.close(fd)
        with_dedup = system.kernel.analyzer.records_out

        system2 = System.boot()
        system2.kernel.analyzer.dedup_enabled = False
        with system2.process(argv=["blockwriter"]) as proc:
            fd = proc.open("/pass/big", "w")
            for _ in range(256):
                proc.write(fd, b"\x00" * 4096)
            proc.close(fd)
        without_dedup = system2.kernel.analyzer.records_out
        return with_dedup, without_dedup

    with_dedup, without_dedup = benchmark.pedantic(experiment, rounds=1,
                                                   iterations=1)
    print(f"\nrecords with dedup: {with_dedup}, without: {without_dedup} "
          f"({without_dedup / with_dedup:.0f}x blow-up)")
    assert without_dedup > 20 * with_dedup


@pytest.mark.benchmark(group="ablations")
def test_passv1_direct_database_regression(benchmark):
    """The log-then-Waldo pipeline vs PASSv1-style synchronous DB writes."""
    def experiment():
        workload = MercurialWorkload(scale=0.4)
        base = run_local(workload, provenance=False)
        passv2 = run_local(workload, provenance=True)

        from repro.kernel.clock import Stopwatch
        system = System.boot()
        system.kernel.volume("pass").lasagna.passv1_direct_db = True
        workload.setup(system, "/pass")
        with Stopwatch(system.kernel.clock) as watch:
            workload.run(system, "/pass")
        return base, passv2, watch.elapsed

    base, passv2, passv1_elapsed = benchmark.pedantic(experiment,
                                                      rounds=1,
                                                      iterations=1)
    v2 = overhead_pct(base, passv2)
    v1 = 100.0 * (passv1_elapsed - base.elapsed) / base.elapsed
    print(f"\nMercurial overhead: PASSv2 (log+Waldo) {v2:.1f}% vs "
          f"PASSv1-style direct DB {v1:.1f}%")
    assert v1 > v2 * 1.5          # the log pipeline must clearly win


@pytest.mark.benchmark(group="ablations")
def test_stackable_cache_share_of_postmark(benchmark):
    """Isolate double buffering's share of Postmark's overhead."""
    from dataclasses import replace

    from repro.kernel.params import CacheParams, SimParams

    def experiment():
        workload = PostmarkWorkload(scale=1.0)
        base = run_local(workload, provenance=False)
        full = run_local(workload, provenance=True)
        no_shrink = SimParams(cache=CacheParams(stack_cache_factor=1.0))
        isolated = run_local(workload, provenance=True, params=no_shrink)
        return base, full, isolated

    base, full, isolated = benchmark.pedantic(experiment, rounds=1,
                                              iterations=1)
    total = overhead_pct(base, full)
    without_buffering = overhead_pct(base, isolated)
    share = total - without_buffering
    print(f"\nPostmark overhead {total:.1f}%, of which double buffering "
          f"{share:.1f} points (paper: 14.8 of 16.8 for PA-NFS)")
    assert share > 0.5            # buffering must be a visible component
    assert without_buffering < total


@pytest.mark.benchmark(group="ablations")
def test_wap_ordering_matters(benchmark):
    """With WAP, a crash between provenance and data is *detected*;
    losing the ordering would mean silently unprovenanced data."""
    from repro.storage.lasagna import CrashPoint
    from repro.storage.recovery import recover

    def experiment():
        system = System.boot()
        with system.process() as proc:
            fd = proc.open("/pass/f", "w")
            proc.write(fd, b"safe")
            proc.close(fd)
        lasagna = system.kernel.volume("pass").lasagna
        lasagna.fail_before_data_write = True
        try:
            with system.process() as proc:
                fd = proc.open("/pass/f", "w")
                proc.write(fd, b"doomed-write")
                proc.close(fd)
        except CrashPoint:
            pass
        lasagna.crash()
        return recover(lasagna)

    report = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\nrecovery flagged {len(report.inconsistent_data)} in-flight "
          f"write(s); {len(report.committed_records)} records survived")
    assert report.inconsistent_data
    assert report.committed_records


@pytest.mark.benchmark(group="ablations")
def test_overhead_ratio_scale_stable(benchmark):
    """EXPERIMENTS.md claims overhead ratios are stable in the workload
    scale factor (they are per-operation effects): verify across a 4x
    scale range for the Mercurial workload."""
    def experiment():
        ratios = []
        for scale in (0.1, 0.2, 0.4):
            workload = MercurialWorkload(scale=scale)
            base = run_local(workload, provenance=False)
            passv2 = run_local(workload, provenance=True)
            ratios.append(overhead_pct(base, passv2))
        return ratios

    ratios = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\nMercurial overhead across scales 0.1/0.2/0.4: "
          f"{[f'{r:.1f}%' for r in ratios]}")
    spread = max(ratios) - min(ratios)
    assert spread < 12.0, f"overhead ratio unstable across scales: {ratios}"


@pytest.mark.benchmark(group="ablations")
def test_analyzer_freeze_rate_is_modest(benchmark):
    """Cycle avoidance is conservative but must not version-explode."""
    def experiment():
        workload = MercurialWorkload(scale=0.4)
        from repro.kernel.clock import Stopwatch
        system = System.boot()
        workload.setup(system, "/pass")
        workload.run(system, "/pass")
        analyzer = system.kernel.analyzer
        return analyzer.freezes, analyzer.records_out

    freezes, records = benchmark.pedantic(experiment, rounds=1,
                                          iterations=1)
    print(f"\nfreezes: {freezes}, records: {records} "
          f"({100 * freezes / max(records, 1):.2f}% of records)")
    assert freezes < records * 0.2
