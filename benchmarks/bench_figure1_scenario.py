"""Figure 1 + section 3.1: the layered anomaly-detection scenario.

A workstation runs the Provenance Challenge workflow under PA-Kepler,
reading inputs from one PA-NFS server and writing outputs to a second.
Between two runs, a colleague silently modifies an input on the input
server.  The benchmark regenerates the figure's point:

* Kepler-layer provenance alone is *identical* across the runs (the
  change happened beneath it);
* PASS-layer provenance alone cannot tie the changed input to the
  changed output through the workflow's internals;
* the *integrated* provenance answers it: the two runs' ancestries
  differ exactly in the version of the modified input.
"""

from __future__ import annotations

import pytest

from repro.apps.kepler.challenge import build_challenge, generate_inputs
from repro.apps.kepler.director import run_workflow
from repro.core.records import Attr
from repro.kernel.clock import SimClock
from repro.nfs import NFSClient, NFSServer
from repro.query.helpers import ancestry_refs, newest_ref_by_name, provenance_diff
from repro.system import System


def _boot_figure1():
    clock = SimClock()
    input_server_sys = System.boot(provenance=True, hostname="inputs",
                                   clock=clock, pass_volumes=("expin",),
                                   plain_volumes=())
    output_server_sys = System.boot(provenance=True, hostname="outputs",
                                    clock=clock, pass_volumes=("expout",),
                                    plain_volumes=())
    input_server = NFSServer(input_server_sys, "expin")
    output_server = NFSServer(output_server_sys, "expout")
    workstation = System.boot(provenance=True, hostname="workstation",
                              clock=clock, pass_volumes=("local",),
                              plain_volumes=())
    in_client = NFSClient(workstation, input_server,
                          mountpoint="/inputs", name="nfs-in")
    out_client = NFSClient(workstation, output_server,
                           mountpoint="/outputs", name="nfs-out")
    return (workstation, input_server_sys, output_server_sys,
            in_client, out_client)


def _run_challenge(workstation, run_tag):
    wf = build_challenge("/inputs/data", f"/local/work{run_tag}",
                         "/outputs")
    from repro.apps.kepler.challenge import ensure_dirs
    ensure_dirs(workstation, f"/local/work{run_tag}")
    return run_workflow(workstation, wf, recording="pass",
                        engine_path="/local/bin/kepler")


@pytest.mark.benchmark(group="figure1")
def test_figure1_anomaly_detection(benchmark):
    def scenario():
        (workstation, in_sys, out_sys,
         in_client, out_client) = _boot_figure1()
        from repro.apps.kepler.challenge import ensure_dirs
        ensure_dirs(workstation, "/inputs/data")
        generate_inputs(workstation, "/inputs/data")

        # Monday's run.
        _run_challenge(workstation, "mon")
        with workstation.process() as proc:
            fd = proc.open("/outputs/atlas-x.gif", "r")
            monday_output = proc.read(fd)
            proc.close(fd)
        in_client.sync()
        out_client.sync()
        workstation.sync()
        in_sys.sync()
        out_sys.sync()
        # The integrated view: all three machines' provenance merged.
        dbs = (workstation.databases() + in_sys.databases()
               + out_sys.databases())
        monday_ref = newest_ref_by_name(dbs, "/outputs/atlas-x.gif")

        # Tuesday: a colleague silently modifies an input on the server.
        with in_sys.process(argv=["colleague"]) as proc:
            fd = proc.open("/expin/data/anatomy2.img", "r+")
            proc.read(fd)
            proc.write(fd, b"RECALIBRATED" * 100)
            proc.close(fd)

        # Wednesday's run.
        in_client.revalidate("/inputs/data/anatomy2.img")
        _run_challenge(workstation, "wed")
        with workstation.process() as proc:
            fd = proc.open("/outputs/atlas-x.gif", "r")
            wednesday_output = proc.read(fd)
            proc.close(fd)
        in_client.sync()
        out_client.sync()
        workstation.sync()
        in_sys.sync()
        out_sys.sync()
        dbs = (workstation.databases() + in_sys.databases()
               + out_sys.databases())
        wednesday_ref = newest_ref_by_name(dbs, "/outputs/atlas-x.gif")
        diff = provenance_diff(dbs, monday_ref, wednesday_ref)
        return monday_output, wednesday_output, dbs, diff

    monday_output, wednesday_output, dbs, diff = benchmark.pedantic(
        scenario, rounds=1, iterations=1)

    # The outputs differ -- the user notices the anomaly.
    assert monday_output != wednesday_output

    # The integrated ancestry diff pinpoints the modified input: a
    # version of anatomy2.img appears only in Wednesday's ancestry.
    def names_of(refs):
        out = {}
        for ref in refs:
            for db in dbs:
                for record in db.records_of(ref.pnode):
                    if record.attr == Attr.NAME:
                        out.setdefault(record.value, set()).add(ref.version)
        return out

    only_wednesday = names_of(diff["only_right"])
    assert any(name.endswith("anatomy2.img") for name in only_wednesday), (
        f"expected the modified input in the diff, got {only_wednesday}")
    # The unmodified inputs are in the *common* ancestry.
    common = names_of(diff["common"])
    assert any(name.endswith("anatomy1.img") for name in common)
    # And the workflow internals (operators) are visible in the
    # integrated ancestry -- the part Kepler contributes.
    wednesday_names = names_of(
        ancestry_refs(dbs, newest_ref_by_name(dbs, "/outputs/atlas-x.gif")))
    assert "softmean" in wednesday_names
    print(f"\nFigure 1 scenario: output changed; ancestry diff names "
          f"{sorted(only_wednesday)} as Wednesday-only ancestors")
