"""Figure 2: the PASSv2 architecture, regenerated from a live system.

Drives one write through the whole stack and prints each of the seven
components with evidence it participated, in pipeline order::

    libpass -> interceptor -> observer -> analyzer -> distributor
            -> Lasagna -> Waldo (-> database)
"""

from __future__ import annotations

import pytest

from repro.core.records import Attr
from repro.system import System


@pytest.mark.benchmark(group="figure2")
def test_figure2_component_pipeline(benchmark):
    def drive():
        system = System.boot()

        def app(sc):
            dpapi = sc.dpapi                       # libpass
            fd = sc.open("/pass/artifact", "w")
            record = dpapi.record(fd, Attr.ANNOTATION, "disclosed")
            dpapi.pass_write(fd, b"data through every layer", [record])
            obj = dpapi.pass_mkobj()
            dpapi.pass_write(obj, records=[
                dpapi.record(obj, Attr.TYPE, "DATASET"),
            ])
            dpapi.pass_sync(obj)
            sc.close(fd)
            return 0

        system.register_program("/pass/bin/app", app)
        system.run("/pass/bin/app")
        system.sync()
        return system

    system = benchmark.pedantic(drive, rounds=1, iterations=1)
    kernel = system.kernel
    lasagna = kernel.volume("pass").lasagna
    waldo = system.waldos["pass"]

    components = [
        ("libpass", "DPAPI calls entered user-level library",
         kernel.interceptor.counts["open"] > 0),
        ("interceptor", f"syscall events: {dict(kernel.interceptor.counts)}",
         sum(kernel.interceptor.counts.values()) > 0),
        ("observer", "events translated into records",
         kernel.analyzer.records_in > 0),
        ("analyzer", f"in={kernel.analyzer.records_in} "
                     f"out={kernel.analyzer.records_out} "
                     f"dups={kernel.analyzer.duplicates_dropped}",
         kernel.analyzer.records_out > 0),
        ("distributor", f"cached={kernel.distributor.records_cached} "
                        f"flushed={kernel.distributor.records_flushed}",
         kernel.distributor.records_flushed > 0),
        ("lasagna", f"log flushes={lasagna.log.flushes} "
                    f"bytes={lasagna.log.bytes_logged}",
         lasagna.log.bytes_logged > 0),
        ("waldo", f"segments={waldo.segments_processed} "
                  f"db records={len(waldo.database)}",
         len(waldo.database) > 0),
    ]
    print("\n--- Figure 2: PASSv2 components, live ---")
    for name, evidence, ok in components:
        print(f"  {name:12s} {evidence}")
        assert ok, f"component {name} saw no traffic"

    # The disclosed ANNOTATION made it all the way to the database,
    # proving the application -> disk path is connected end to end.
    db = system.database("pass")
    annotations = [r for r in db.all_records() if r.attr == Attr.ANNOTATION]
    assert annotations
    # ...and the pass_mkobj DATASET object was persisted via pass_sync.
    datasets = [r for r in db.all_records()
                if r.attr == Attr.TYPE and r.value == "DATASET"]
    assert datasets
