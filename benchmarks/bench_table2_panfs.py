"""Table 2 (right half): elapsed-time overhead, PA-NFS vs plain NFS.

Paper claims regenerated here:

* compile and Mercurial overheads *drop* relative to the local column --
  network round trips inflate both baselines equally;
* Postmark's overhead *rises* and tops the column -- the stackable
  double buffering at the server dominates (paper: 14.8 of 16.8 points);
* the CPU-bound workloads stay minimal.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALES, PAPER_TABLE2, print_row
from repro.workloads import (
    ALL_WORKLOADS,
    BlastWorkload,
    CompileWorkload,
    KeplerWorkload,
    MercurialWorkload,
    PostmarkWorkload,
)
from repro.workloads.base import overhead_pct, run_nfs


def _bench_one(benchmark, workload_cls, table2_rows):
    workload = workload_cls(scale=BENCH_SCALES[workload_cls.name])

    def experiment():
        base = run_nfs(workload, provenance=False)
        panfs = run_nfs(workload, provenance=True)
        return base, panfs

    base, panfs = benchmark.pedantic(experiment, rounds=1, iterations=1)
    overhead = overhead_pct(base, panfs)
    table2_rows.setdefault("nfs", {})[workload.name] = (
        base.elapsed, panfs.elapsed, overhead)
    print()
    print_row(workload.name, f"{base.elapsed:.1f}s",
              f"{panfs.elapsed:.1f}s", f"{overhead:.1f}%",
              f"(paper {PAPER_TABLE2[workload.name]['nfs']}%)")
    return base, panfs, overhead


@pytest.mark.benchmark(group="table2-panfs")
def test_linux_compile_nfs(benchmark, table2_rows):
    _, _, overhead = _bench_one(benchmark, CompileWorkload, table2_rows)
    assert 4.0 < overhead < 25.0


@pytest.mark.benchmark(group="table2-panfs")
def test_postmark_nfs(benchmark, table2_rows):
    _, _, overhead = _bench_one(benchmark, PostmarkWorkload, table2_rows)
    assert 8.0 < overhead < 30.0


@pytest.mark.benchmark(group="table2-panfs")
def test_mercurial_activity_nfs(benchmark, table2_rows):
    _, _, overhead = _bench_one(benchmark, MercurialWorkload, table2_rows)
    assert overhead < 25.0


@pytest.mark.benchmark(group="table2-panfs")
def test_blast_nfs(benchmark, table2_rows):
    _, _, overhead = _bench_one(benchmark, BlastWorkload, table2_rows)
    assert overhead < 4.0


@pytest.mark.benchmark(group="table2-panfs")
def test_pa_kepler_nfs(benchmark, table2_rows):
    _, _, overhead = _bench_one(benchmark, KeplerWorkload, table2_rows)
    assert overhead < 5.0


@pytest.mark.benchmark(group="table2-panfs")
def test_shape_matches_paper_nfs(benchmark, table2_rows):
    """The cross-column claims need both halves of Table 2."""
    from repro.workloads.base import run_local

    def collect():
        nfs_rows = table2_rows.get("nfs", {})
        local_rows = table2_rows.get("local", {})
        for cls in ALL_WORKLOADS:
            workload = cls(scale=BENCH_SCALES[cls.name])
            if cls.name not in nfs_rows:
                base = run_nfs(workload, provenance=False)
                panfs = run_nfs(workload, provenance=True)
                nfs_rows[cls.name] = (base.elapsed, panfs.elapsed,
                                      overhead_pct(base, panfs))
            if cls.name not in local_rows:
                base = run_local(workload, provenance=False)
                passv2 = run_local(workload, provenance=True)
                local_rows[cls.name] = (base.elapsed, passv2.elapsed,
                                        overhead_pct(base, passv2))
        return local_rows, nfs_rows

    local_rows, nfs_rows = benchmark.pedantic(collect, rounds=1,
                                              iterations=1)
    print("\n--- Table 2 (PA-NFS vs NFS), regenerated ---")
    print_row("Benchmark", "NFS", "PA-NFS", "Overhead", "Paper")
    for name in PAPER_TABLE2:
        base_s, pass_s, ovh = nfs_rows[name]
        print_row(name, f"{base_s:.1f}", f"{pass_s:.1f}", f"{ovh:.1f}%",
                  f"{PAPER_TABLE2[name]['nfs']}%")
    local = {name: local_rows[name][2] for name in local_rows}
    nfs = {name: nfs_rows[name][2] for name in nfs_rows}
    # Network RTTs dilute compile and Mercurial...
    assert nfs["Linux Compile"] < local["Linux Compile"]
    assert nfs["Mercurial Activity"] < local["Mercurial Activity"]
    # ...while Postmark's overhead grows (stackable double buffering)
    # and tops the PA-NFS column.
    assert nfs["Postmark"] > local["Postmark"]
    assert nfs["Postmark"] == max(nfs.values())
    assert nfs["Blast"] < 4.0 and nfs["PA-Kepler"] < 5.0
