"""Provenance-pipeline throughput micro-benchmarks (real wall-clock).

Engineering guards on the hot path the workloads exercise: syscall ->
observer -> analyzer -> distributor -> Lasagna, and Waldo's drain.

Machines boot with the shared ``QUIET_BOOT`` config (metrics off) so
the guards measure the pipeline itself; bench_obs_overhead.py measures
what turning the metrics on costs.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer import Analyzer, ProtoRecord
from repro.core.pnode import ObjectRef
from repro.core.records import Attr
from repro.system import System

from benchmarks.conftest import QUIET_BOOT


@pytest.mark.benchmark(group="pipeline-perf")
def test_perf_write_syscall_with_provenance(benchmark):
    system = System.boot(config=QUIET_BOOT)
    shell = system.kernel.spawn_shell(["bench"])
    counter = [0]

    def one_file():
        counter[0] += 1
        fd = shell.open(f"/pass/bench-{counter[0]}", "w")
        shell.write(fd, b"x" * 256)
        shell.close(fd)

    benchmark(one_file)


@pytest.mark.benchmark(group="pipeline-perf")
def test_perf_read_syscall_with_provenance(benchmark):
    system = System.boot(config=QUIET_BOOT)
    shell = system.kernel.spawn_shell(["bench"])
    fd = shell.open("/pass/target", "w")
    shell.write(fd, b"y" * 4096)
    shell.close(fd)
    read_fd = shell.open("/pass/target", "r")

    def one_read():
        shell.pread(read_fd, 0, 4096)

    benchmark(one_read)


@pytest.mark.benchmark(group="pipeline-perf")
def test_perf_analyzer_throughput(benchmark):
    """Records per second through dedup + cycle avoidance."""
    sink = []
    analyzer = Analyzer(emit=sink.append)

    class Obj:
        __slots__ = ("pnode", "version")

        def __init__(self, pnode):
            self.pnode = pnode
            self.version = 0

        def ref(self):
            return ObjectRef(self.pnode, self.version)

    proc = Obj(1)
    counter = [100]

    def submit_batch():
        for _ in range(100):
            counter[0] += 1
            analyzer.submit(ProtoRecord(proc, Attr.INPUT,
                                        ObjectRef(counter[0], 0)))

    benchmark(submit_batch)
    assert analyzer.records_out > 0


@pytest.mark.benchmark(group="pipeline-perf")
def test_perf_waldo_drain(benchmark):
    """Segment ingestion into the indexed database."""
    from repro.core.records import ProvenanceRecord
    from repro.kernel.clock import SimClock
    from repro.kernel.params import LogParams
    from repro.storage.log import ProvenanceLog
    from repro.storage.waldo import Waldo

    def drain_one_segment():
        log = ProvenanceLog(SimClock(), LogParams(max_size=1 << 30))
        waldo = Waldo(log)
        for index in range(1000):
            log.append(ProvenanceRecord(ObjectRef(index % 50, 0),
                                        Attr.NAME, f"name-{index}"))
        log.flush()
        log.rotate()
        return waldo.drain()

    inserted = benchmark(drain_one_segment)
    assert inserted == 1000


@pytest.mark.benchmark(group="pipeline-perf")
def test_perf_end_to_end_sync(benchmark):
    """Full cycle: 200 files written, logs drained, graph rebuilt."""
    def cycle():
        system = System.boot(config=QUIET_BOOT)
        with system.process(argv=["writer"]) as proc:
            for index in range(200):
                fd = proc.open(f"/pass/f{index}", "w")
                proc.write(fd, b"data")
                proc.close(fd)
        system.sync()
        return len(system.database("pass"))

    records = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert records > 400
