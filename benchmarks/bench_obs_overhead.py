"""What does passmon cost?  Wall-clock overhead of the obs subsystem.

Runs the same write-heavy pipeline workload three ways -- observability
off, metrics on (the default), metrics + tracing on -- and prints the
wall-clock cost of each step up, plus the per-layer metrics breakdown
the instrumented runs produced.  The design target (ISSUE 2) is that
the disabled configuration is indistinguishable from the seed and the
default configuration stays within a few percent.
"""

from __future__ import annotations

import time

import pytest

from repro.obs import FIGURE2_LAYERS
from repro.system import System

N_FILES = 300


def run_pipeline(observability: bool, tracing: bool) -> System:
    system = System.boot(observability=observability, tracing=tracing)
    with system.process(argv=["writer"]) as proc:
        for index in range(N_FILES):
            fd = proc.open(f"/pass/f{index}", "w")
            proc.write(fd, b"x" * 128)
            proc.close(fd)
    system.sync()
    system.query("select F from Provenance.file as F limit 5")
    return system


def timed(observability: bool, tracing: bool) -> tuple[float, System]:
    started = time.perf_counter()
    system = run_pipeline(observability, tracing)
    return time.perf_counter() - started, system


@pytest.mark.benchmark(group="obs-overhead")
def test_obs_overhead_and_breakdown(benchmark):
    def experiment():
        off, _ = timed(observability=False, tracing=False)
        metrics, system = timed(observability=True, tracing=False)
        traced, traced_sys = timed(observability=True, tracing=True)
        return off, metrics, traced, system, traced_sys

    off, metrics, traced, system, traced_sys = benchmark.pedantic(
        experiment, rounds=1, iterations=1)

    def pct(cost: float) -> float:
        return 100.0 * (cost - off) / off if off else 0.0

    print()
    print(f"{'configuration':26s}{'wall':>10s}{'vs off':>10s}")
    print(f"{'observability off':26s}{off:>9.3f}s{'--':>10s}")
    print(f"{'metrics (default)':26s}{metrics:>9.3f}s{pct(metrics):>9.1f}%")
    print(f"{'metrics + tracing':26s}{traced:>9.3f}s{pct(traced):>9.1f}%")

    print()
    print("per-layer counters (metrics run):")
    stats = system.stats()
    for layer in FIGURE2_LAYERS:
        counters = stats[layer]["counters"]
        top = sorted(counters.items(), key=lambda kv: -kv[1])[:3]
        cells = "  ".join(f"{name}={value}" for name, value in top)
        print(f"  {layer:12s}{cells}")
        assert sum(counters.values()) > 0, layer

    assert len(traced_sys.trace()) > 0
