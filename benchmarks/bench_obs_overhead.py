"""What does passview cost?  Wall-clock overhead of the obs stack.

The committed budget (docs/OBSERVABILITY.md): with the full export
stack enabled -- metrics + tracing + event journal, *including* the
exporter renders (Chrome trace JSON, Prometheus text, journal JSONL)
-- the batched ingest path may cost at most 5% over the default boot;
with the journal disabled (the default), the passview seams are one
attribute test each and must stay in the noise.

Three arms run the same write-heavy batched-ingest workload:

* ``off``      -- ``observability=False``: metrics, tracing, and the
  journal all disabled.  This arm *includes* every passview seam (the
  disabled ``obs.event`` branches), so its distance from the default
  arm bounds the disabled-path cost.
* ``default``  -- the shipped boot: metrics on, journal off.
* ``full``     -- metrics + tracing + journal, with all three
  exporters rendered inside the timed region.

Each repeat runs the three arms back to back so a pair's elapsed ratio
cancels clock/cache drift; the *median* pair ratio is the headline
number (same estimator as ``bench_ingest``).

Run directly (CI does; no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --out BENCH_results.json

Exits nonzero when the enabled overhead exceeds ``--max-overhead-pct``
(default 5, the budget) or when the full arm produced no spans /
journal events (the stack silently off would make the gate vacuous).
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

from repro.obs.export import chrome_trace_json, prometheus_text
from repro.system import BootConfig, System

try:
    from _bench_io import merge_results
except ImportError:  # imported as part of a package-style run
    from benchmarks._bench_io import merge_results

OFF = BootConfig(observability=False)
DEFAULT = BootConfig()
FULL = BootConfig(tracing=True, journal=True)

#: Chunked writes per file (duplicate-heavy INPUT traffic that keeps
#: the analyzer and the group-commit machinery busy).
CHUNKS_PER_FILE = 4

#: Queries per round: exercises the plan cache (first compile, then
#: hits) and the slow-query seam in ``QueryEngine.execute``.
QUERIES = (
    "select F from Provenance.file as F",
    "select P from Provenance.proc as P",
)


def run_arm(config: BootConfig, rounds: int, files: int) -> dict:
    """The workload on one arm: chunked writes, sync, queries."""
    system = System.boot(config=config)
    # Collector-free timing, one explicit collection outside the timed
    # region (see bench_ingest.run_arm for the rationale).
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        records = 0
        for round_index in range(rounds):
            with system.process(argv=[f"writer-{round_index}"]) as proc:
                for index in range(files):
                    fd = proc.open(f"/pass/r{round_index}-f{index}", "w")
                    chunk = bytes([65 + (index % 26)]) * 64
                    for _ in range(CHUNKS_PER_FILE):
                        proc.write(fd, chunk)
                    proc.close(fd)
            records += system.sync()
            for text in QUERIES:
                system.query(text)
        exported_bytes = 0
        if config.journal:
            # The budget covers the export half too: render all three
            # formats inside the timed region.
            exported_bytes += len(chrome_trace_json(system.trace()))
            exported_bytes += len(prometheus_text(system.stats()))
            exported_bytes += len(system.obs.journal.to_jsonl())
        elapsed = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()
    return {
        "records": records,
        "elapsed_s": elapsed,
        "records_per_sec": records / elapsed if elapsed else float("inf"),
        "exported_bytes": exported_bytes,
        "spans": len(system.trace()) if config.tracing else 0,
        "journal_events": (len(system.journal_events())
                           if config.journal else 0),
    }


def run(rounds: int = 10, files: int = 220, repeats: int = 3) -> dict:
    """All three arms; returns the BENCH_results payload.

    ``overhead_pct`` is the median full-vs-default pair overhead (the
    gated budget); ``disabled_overhead_pct`` is the median
    default-vs-off pair overhead (report-only: the always-on metrics
    stack plus every *disabled* passview branch).
    """
    # Warmup triple (discarded): first runs after unrelated load see
    # cold caches and a throttled clock.
    run_arm(OFF, 1, files)
    run_arm(DEFAULT, 1, files)
    run_arm(FULL, 1, files)
    triples = []
    for _ in range(max(1, repeats)):
        off = run_arm(OFF, rounds, files)
        default = run_arm(DEFAULT, rounds, files)
        full = run_arm(FULL, rounds, files)
        assert off["records"] == default["records"] == full["records"], \
            "arms drained different record counts"
        enabled_pct = 100.0 * (full["elapsed_s"] / default["elapsed_s"] - 1)
        disabled_pct = 100.0 * (default["elapsed_s"] / off["elapsed_s"] - 1)
        triples.append((enabled_pct, disabled_pct, off, default, full))
    triples.sort(key=lambda triple: triple[0])
    enabled_pct, _, off, default, full = triples[len(triples) // 2]
    disabled_pct = sorted(t[1] for t in triples)[len(triples) // 2]
    return {
        "schema": "repro-bench-obs/1",
        "workload": "batched-ingest+query",
        "rounds": rounds,
        "files_per_round": files,
        "repeats": max(1, repeats),
        "chunks_per_file": CHUNKS_PER_FILE,
        "records_total": full["records"],
        "off": off,
        "default": default,
        "full": full,
        "overhead_pct": enabled_pct,
        "disabled_overhead_pct": disabled_pct,
    }


def test_obs_overhead_stack_is_live():
    """Pytest entry point (small scale): the full arm must actually
    collect spans and journal events, and every arm must agree on the
    record count.  The 5% budget itself is gated in CI at full scale,
    not here -- a two-round run is too noisy for a percent assertion.
    """
    result = run(rounds=2, files=24, repeats=1)
    assert result["records_total"] > 0
    assert result["full"]["spans"] > 0
    assert result["full"]["journal_events"] > 0
    assert result["full"]["exported_bytes"] > 0
    assert result["off"]["spans"] == result["off"]["journal_events"] == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--files", type=int, default=220,
                        help="files written per round")
    parser.add_argument("--repeats", type=int, default=3,
                        help="back-to-back arm triples; the median "
                             "pair overhead is reported")
    parser.add_argument("--out", default=None,
                        help="merge the result payload into this JSON file")
    parser.add_argument("--max-overhead-pct", type=float, default=5.0,
                        help="enabled-overhead budget (default "
                             "%(default)s, the committed budget)")
    args = parser.parse_args(argv)

    result = run(rounds=args.rounds, files=args.files,
                 repeats=args.repeats)
    print(f"obs overhead: {result['records_total']} records over "
          f"{args.rounds} rounds")
    for arm in ("off", "default", "full"):
        stats = result[arm]
        extra = ""
        if arm == "full":
            extra = (f"  ({stats['spans']} spans, "
                     f"{stats['journal_events']} journal events, "
                     f"{stats['exported_bytes']} exported bytes)")
        print(f"  {arm:8s}{stats['elapsed_s']:>8.3f}s "
              f"({stats['records_per_sec']:,.0f} rec/s){extra}")
    print(f"  enabled overhead (full vs default): "
          f"{result['overhead_pct']:+.2f}%")
    print(f"  disabled overhead (default vs off): "
          f"{result['disabled_overhead_pct']:+.2f}%")
    if args.out and args.out != "-":
        merge_results(args.out, "obs_overhead", result)
        print(f"merged into {args.out}")
    if result["full"]["spans"] == 0 or result["full"]["journal_events"] == 0:
        print("FAIL: full arm collected no spans/journal events; the "
              "overhead gate would be vacuous", file=sys.stderr)
        return 1
    if result["overhead_pct"] > args.max_overhead_pct:
        print(f"FAIL: enabled overhead {result['overhead_pct']:+.2f}% "
              f"exceeds the {args.max_overhead_pct}% budget",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
