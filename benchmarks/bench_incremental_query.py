"""Incremental vs batch query path on a churn workload (wall-clock).

The tentpole measurement for the live OEM graph: a sync -> query ->
sync loop where provenance keeps arriving.  The *incremental* arm holds
one live engine (``System.query_engine()``); every sync splices the new
records into its graph through the database push feed, so per-round
cost is O(new records).  The *batch* arm does what the old read path
did: rebuild the whole graph from every record after each sync --
O(total history) per round.

Both arms run the identical workload and the identical query, and the
per-round query results are asserted equal, so the speedup is for the
same answer.

Run directly (CI does; no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_incremental_query.py \
        --out BENCH_results.json

Exits nonzero if the incremental loop is not at least ``--min-speedup``
times faster (default 2.0), or if fewer than 10k records were churned.
"""

from __future__ import annotations

import argparse
import itertools
import sys
import time

from repro.pql.engine import QueryEngine
from repro.system import BootConfig, System

try:
    from _bench_io import merge_results
except ImportError:  # imported as part of a package-style run
    from benchmarks._bench_io import merge_results

#: Metrics off in both arms: measure the pipeline + graph work itself.
QUIET = BootConfig(observability=False)

#: Name-indexed lookup: evaluation is cheap in both arms (selection
#: pushdown), so the timings weigh sync + graph maintenance, which is
#: what the two arms do differently.
QUERY = ('select F from Provenance.file as F '
         'where F.name = "/pass/churn/r0-f0.dat"')


def churn_round(system: System, round_index: int, files: int) -> None:
    """One round of churn: new files plus overwrites of earlier ones."""
    with system.process(argv=[f"churner-{round_index}"]) as proc:
        if round_index == 0:
            proc.mkdir("/pass/churn")
        for index in range(files):
            fd = proc.open(f"/pass/churn/r{round_index}-f{index}.dat", "w")
            proc.write(fd, bytes([65 + (index % 26)]) * 128)
            proc.close(fd)
        if round_index > 0:
            for index in range(files // 2):
                fd = proc.open(
                    f"/pass/churn/r{round_index - 1}-f{index}.dat", "w")
                proc.write(fd, b"overwrite" * 16)
                proc.close(fd)


def run_incremental(rounds: int, files: int):
    """Sync + query per round against the one live engine."""
    system = System.boot(config=QUIET)
    engine = system.query_engine()
    timings, results, records = [], [], 0
    for round_index in range(rounds):
        churn_round(system, round_index, files)
        started = time.perf_counter()
        records += system.sync()
        rows = engine.execute_refs(QUERY)
        timings.append(time.perf_counter() - started)
        # pnode numbering differs between machines; versions don't.
        results.append(sorted(ref.version for ref in rows))
        assert system.query_engine() is engine
    return timings, results, records


def run_batch(rounds: int, files: int):
    """Sync + full graph rebuild + query per round (the old read path)."""
    system = System.boot(config=QUIET)
    timings, results, records = [], [], 0
    for round_index in range(rounds):
        churn_round(system, round_index, files)
        started = time.perf_counter()
        records += system.sync()
        engine = QueryEngine.from_records(itertools.chain(
            *(db.all_records() for db in system.databases())))
        rows = engine.execute_refs(QUERY)
        timings.append(time.perf_counter() - started)
        results.append(sorted(ref.version for ref in rows))
    return timings, results, records


def run(rounds: int = 12, files: int = 150) -> dict:
    """Both arms; returns the BENCH_results payload."""
    batch_times, batch_rows, batch_records = run_batch(rounds, files)
    incr_times, incr_rows, incr_records = run_incremental(rounds, files)
    assert batch_records == incr_records, "arms churned different records"
    assert batch_rows == incr_rows, \
        "incremental and batch queries disagree"
    batch_total = sum(batch_times)
    incr_total = sum(incr_times)
    return {
        "schema": "repro-bench-incremental/1",
        "workload": "churn",
        "rounds": rounds,
        "files_per_round": files,
        "records_total": incr_records,
        "query": QUERY,
        "batch": {"per_round_s": batch_times, "total_s": batch_total},
        "incremental": {"per_round_s": incr_times, "total_s": incr_total},
        "speedup": batch_total / incr_total if incr_total else float("inf"),
    }


def test_incremental_beats_batch():
    """Pytest entry point (small scale): same loop, same gate."""
    result = run(rounds=6, files=60)
    assert result["speedup"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--rounds", type=int, default=12)
    parser.add_argument("--files", type=int, default=150,
                        help="new files per round (half get overwritten)")
    parser.add_argument("--out", default=None,
                        help="write the result payload to this JSON file")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--min-records", type=int, default=10000)
    args = parser.parse_args(argv)

    result = run(rounds=args.rounds, files=args.files)
    print(f"churn workload: {result['records_total']} records over "
          f"{args.rounds} rounds")
    print(f"  batch (rebuild per sync): {result['batch']['total_s']:.3f}s")
    print(f"  incremental (live graph): "
          f"{result['incremental']['total_s']:.3f}s")
    print(f"  speedup: {result['speedup']:.1f}x")
    if args.out and args.out != "-":
        merge_results(args.out, "incremental_query", result)
        print(f"merged into {args.out}")
    if result["records_total"] < args.min_records:
        print(f"FAIL: churned {result['records_total']} records, need "
              f">= {args.min_records}", file=sys.stderr)
        return 1
    if result["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {result['speedup']:.2f}x below the "
              f"{args.min_speedup}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
