"""Table 1: the provenance record types each layer contributes.

Runs each provenance-aware component against a live system and
enumerates the record types it actually produced, regenerating the
paper's table::

    PA-NFS:    BEGINTXN, ENDTXN, FREEZE
    PA-Kepler: TYPE (OPERATOR), NAME, PARAMS, INPUT
    PA-links:  TYPE (SESSION), VISITED_URL, FILE_URL, CURRENT_URL, INPUT
    PA-Python: TYPE (e.g. FUNCTION), NAME, INPUT
"""

from __future__ import annotations

import pytest

from repro.core.records import Attr, ObjType
from repro.system import System


def _attrs_for_type(db, obj_type):
    """Attributes recorded on objects of one TYPE."""
    out = set()
    for ref in db.subjects_with_attr(Attr.TYPE):
        if obj_type in db.attribute_values(ref, Attr.TYPE):
            for record in db.records_of(ref.pnode):
                out.add(record.attr)
    return out


def _run_panfs():
    from repro.kernel.clock import SimClock
    from repro.nfs import NFSClient, NFSServer, Network

    clock = SimClock()
    server_sys = System.boot(provenance=True, hostname="server",
                             clock=clock, pass_volumes=("export",),
                             plain_volumes=())
    server = NFSServer(server_sys, "export")
    client_sys = System.boot(provenance=True, hostname="client",
                             clock=clock, pass_volumes=("local",),
                             plain_volumes=())
    client = NFSClient(client_sys, server)
    with client_sys.process() as proc:
        # Enough distinct inputs to overflow one wire block -> txn ops,
        # plus a read-modify-write -> FREEZE record.
        for index in range(2600):
            fd = proc.open(f"/nfs/in{index}", "w")
            proc.write(fd, b"x")
            proc.close(fd)
    with client_sys.process() as proc:
        for index in range(2600):
            fd = proc.open(f"/nfs/in{index}", "r")
            proc.read(fd)
            proc.close(fd)
        fd = proc.open("/nfs/out", "w")
        proc.write(fd, b"agg")
        proc.close(fd)
        fd = proc.open("/nfs/out", "r+")
        proc.read(fd)
        proc.write(fd, b"rmw")
        proc.close(fd)
    # FREEZE/BEGINTXN/ENDTXN live in the log stream; BEGINTXN/ENDTXN are
    # framing that Waldo strips from the database, so collect them from
    # the raw segments *before* Waldo drains and removes the log files.
    client.sync()
    server.volume.lasagna.log.flush()
    log_attrs = set()
    for segment in server.volume.lasagna.log.all_segments():
        for record in segment.records:
            log_attrs.add(record.attr)
    server_sys.sync()
    db_attrs = {r.attr for r in server_sys.database("export").all_records()}
    return db_attrs | log_attrs, server.op_counts


def _run_kepler():
    from repro.apps.kepler import (
        FileSink,
        FileSource,
        Transformer,
        Workflow,
        run_workflow,
    )
    from tests.conftest import write_file

    system = System.boot()
    write_file(system, "/pass/in", b"data")
    wf = Workflow("t1")
    wf.add(FileSource("src", path="/pass/in"))
    wf.add(Transformer("xf", fn=lambda data: data))
    wf.add(FileSink("sink", path="/pass/out"))
    wf.connect("src", "out", "xf", "in")
    wf.connect("xf", "out", "sink", "in")
    run_workflow(system, wf, recording="pass")
    system.sync()
    return _attrs_for_type(system.database("pass"), ObjType.OPERATOR)


def _run_links():
    from repro.apps.links import Browser, Web

    system = System.boot()
    web = Web()
    web.publish("http://site/", links=["http://site/file.bin"])
    web.publish("http://site/file.bin", content=b"payload")

    def program(sc):
        browser = Browser(sc, web)
        session = browser.new_session()
        browser.visit(session, "http://site/")
        browser.download(session, "http://site/file.bin", "/pass/file.bin")
        return 0

    system.register_program("/pass/bin/links", program)
    system.run("/pass/bin/links")
    system.sync()
    db = system.database("pass")
    session_attrs = _attrs_for_type(db, ObjType.SESSION)
    file_ref = db.find_by_name("/pass/file.bin")[0]
    file_attrs = {r.attr for r in db.records_of(file_ref.pnode)}
    return session_attrs, file_attrs


def _run_papython():
    from repro.apps.papython import ProvenanceTracker

    system = System.boot()

    def program(sc):
        tracker = ProvenanceTracker(sc)
        fn = tracker.wrap_function(lambda x: x, name="identity")
        doc = tracker.read_file("/pass/in")
        tracker.write_file("/pass/out", fn(doc))
        return 0

    from tests.conftest import write_file
    write_file(system, "/pass/in", b"data")
    system.register_program("/pass/bin/app", program)
    system.run("/pass/bin/app")
    system.sync()
    db = system.database("pass")
    return (_attrs_for_type(db, ObjType.FUNCTION)
            | _attrs_for_type(db, ObjType.INVOCATION)
            | _attrs_for_type(db, ObjType.PYOBJECT))


@pytest.mark.benchmark(group="table1-records")
def test_pa_nfs_record_types(benchmark):
    attrs, op_counts = benchmark.pedantic(_run_panfs, rounds=1,
                                          iterations=1)
    print("\nPA-NFS record types:",
          sorted(attrs & {Attr.BEGINTXN, Attr.ENDTXN, Attr.FREEZE}))
    assert Attr.BEGINTXN in attrs
    assert Attr.ENDTXN in attrs
    assert Attr.FREEZE in attrs
    assert op_counts["PASSPROV"] > 0


@pytest.mark.benchmark(group="table1-records")
def test_pa_kepler_record_types(benchmark):
    attrs = benchmark.pedantic(_run_kepler, rounds=1, iterations=1)
    print("\nPA-Kepler operator record types:", sorted(attrs))
    assert {Attr.TYPE, Attr.NAME, Attr.PARAMS, Attr.INPUT} <= attrs


@pytest.mark.benchmark(group="table1-records")
def test_pa_links_record_types(benchmark):
    session_attrs, file_attrs = benchmark.pedantic(_run_links, rounds=1,
                                                   iterations=1)
    print("\nPA-links session record types:", sorted(session_attrs))
    print("PA-links downloaded-file record types:", sorted(file_attrs))
    assert {Attr.TYPE, Attr.VISITED_URL} <= session_attrs
    assert {Attr.FILE_URL, Attr.CURRENT_URL, Attr.INPUT} <= file_attrs


@pytest.mark.benchmark(group="table1-records")
def test_pa_python_record_types(benchmark):
    attrs = benchmark.pedantic(_run_papython, rounds=1, iterations=1)
    print("\nPA-Python record types:", sorted(attrs))
    assert {Attr.TYPE, Attr.NAME, Attr.INPUT} <= attrs
